//! Model theory (Appendix A).
//!
//! An interpretation `I` is a model of `P ∪ db` iff `db ⊆ I` and
//! `T_{P,db}(I) ⊆ I` (Lemma 4). The fixpoint semantics and the minimal-model
//! semantics coincide (Corollaries 5 and 6): `lfp(T_{P,db})` is the unique
//! minimal model. This module provides the executable model check used by
//! the Appendix A equivalence tests.

use crate::compile::compile;
use crate::database::Database;
use crate::eval::interp::FactStore;
use crate::eval::{tp_step, EvalConfig, EvalError, Model};
use crate::registry::TransducerRegistry;
use crate::Program;
use seqlog_sequence::SeqStore;

/// Is `candidate` a model of `program ∪ db` (Definition 12 / Lemma 4)?
///
/// Checks `db ⊆ I` and `T_{P,db}(I) ⊆ I` by running one T-application with
/// substitutions ranging over `I`'s extended active domain.
pub fn is_model(
    program: &Program,
    db: &Database,
    candidate: &Model,
    store: &mut SeqStore,
    registry: &TransducerRegistry,
    config: &EvalConfig,
) -> Result<bool, EvalError> {
    let compiled = compile(program)?;
    is_model_compiled(&compiled, db, candidate, store, registry, config)
}

/// [`is_model`] over an already-compiled program: `db ⊆ I` plus
/// [`closed_under_tp`].
pub fn is_model_compiled(
    program: &crate::compile::CompiledProgram,
    db: &Database,
    candidate: &Model,
    store: &mut SeqStore,
    registry: &TransducerRegistry,
    config: &EvalConfig,
) -> Result<bool, EvalError> {
    for (pred, tuple) in db.iter() {
        if !candidate.facts.contains(pred, tuple) {
            return Ok(false);
        }
    }
    closed_under_tp(
        program,
        &candidate.facts,
        &candidate.domain,
        store,
        registry,
        config,
    )
}

/// Is the interpretation closed under the T-operator — `T_{P,db}(I) ⊆ I`?
/// The shared core of [`is_model_compiled`] and
/// [`crate::session::EngineSession::check_model`] (which skips the
/// `db ⊆ I` half because a session's base facts are in `I` by
/// construction).
pub fn closed_under_tp(
    program: &crate::compile::CompiledProgram,
    facts: &FactStore,
    domain: &seqlog_sequence::ExtendedDomain,
    store: &mut SeqStore,
    registry: &TransducerRegistry,
    config: &EvalConfig,
) -> Result<bool, EvalError> {
    let derived = tp_step(program, store, registry, facts, domain, config)?;
    Ok(derived
        .into_iter()
        .all(|(pid, tuple)| facts.contains(program.preds.name(pid), &tuple)))
}

/// Build a [`Model`] wrapper from an arbitrary fact set (re-deriving its
/// extended active domain), for testing non-fixpoint interpretations.
pub fn model_from_facts(facts: FactStore, store: &mut SeqStore) -> Model {
    let mut domain = seqlog_sequence::ExtendedDomain::new();
    let ids: Vec<_> = facts.all_seq_ids().collect();
    for id in ids {
        domain.insert_closed(store, id);
    }
    let stats = crate::eval::EvalStats {
        facts: facts.total_facts(),
        domain_size: domain.len(),
        ..Default::default()
    };
    Model {
        facts,
        domain,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn least_fixpoint_is_a_model() {
        let mut e = Engine::new();
        let p = e
            .parse_program(
                "suffix(X[N:end]) :- r(X).\n\
                 pair(X, Y) :- suffix(X), suffix(Y).",
            )
            .unwrap();
        let mut db = Database::new();
        e.add_fact(&mut db, "r", &["ab"]);
        let m = e.evaluate(&p, &db).unwrap();
        let ok = is_model(
            &p,
            &db,
            &m,
            &mut e.store,
            &e.registry,
            &EvalConfig::default(),
        )
        .unwrap();
        assert!(ok, "lfp must be a model (Corollary 5)");
    }

    #[test]
    fn strictly_smaller_interpretations_are_not_models() {
        let mut e = Engine::new();
        let p = e.parse_program("suffix(X[N:end]) :- r(X).").unwrap();
        let mut db = Database::new();
        e.add_fact(&mut db, "r", &["ab"]);
        let m = e.evaluate(&p, &db).unwrap();

        // Drop all suffix facts: db alone is not a model.
        let mut facts = FactStore::new();
        let r_tuples: Vec<Vec<_>> = m.tuples("r").into_iter().map(<[_]>::to_vec).collect();
        for t in r_tuples {
            facts.insert_named("r", t.into());
        }
        let candidate = model_from_facts(facts, &mut e.store);
        let ok = is_model(
            &p,
            &db,
            &candidate,
            &mut e.store,
            &e.registry,
            &EvalConfig::default(),
        )
        .unwrap();
        assert!(!ok);
    }

    #[test]
    fn supersets_of_lfp_can_be_models() {
        // Adding an unrelated fact to the lfp keeps it a model (models are
        // closed under adding facts that trigger no rules).
        let mut e = Engine::new();
        let p = e.parse_program("p(X) :- r(X).").unwrap();
        let mut db = Database::new();
        e.add_fact(&mut db, "r", &["a"]);
        let m = e.evaluate(&p, &db).unwrap();

        let mut facts = m.facts.clone();
        let junk = e.seq("zzz");
        facts.insert_named("unrelated", vec![junk].into());
        let candidate = model_from_facts(facts, &mut e.store);
        let ok = is_model(
            &p,
            &db,
            &candidate,
            &mut e.store,
            &e.registry,
            &EvalConfig::default(),
        )
        .unwrap();
        assert!(ok);
    }

    #[test]
    fn missing_db_facts_disqualify() {
        let mut e = Engine::new();
        let p = e.parse_program("p(X) :- r(X).").unwrap();
        let mut db = Database::new();
        e.add_fact(&mut db, "r", &["a"]);
        let empty = model_from_facts(FactStore::new(), &mut e.store);
        let ok = is_model(
            &p,
            &db,
            &empty,
            &mut e.store,
            &e.registry,
            &EvalConfig::default(),
        )
        .unwrap();
        assert!(!ok);
    }
}
