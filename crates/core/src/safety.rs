//! Safety analysis (Sections 5 and 8) — AST-level facade.
//!
//! * **Predicate dependency graph** (Definition 9): nodes are predicate
//!   names; an edge `p → q` exists when some clause has head predicate `p`
//!   and body predicate `q`; the edge is *constructive* when that clause is
//!   constructive (head contains `++` or a transducer term, Definition 8).
//! * A **constructive cycle** is a cycle containing a constructive edge;
//!   a program is **strongly safe** when its graph has none
//!   (Definition 10) — equivalently, no constructive edge connects two
//!   predicates in the same strongly connected component.
//! * **Stratification**: linearizing the SCCs (the proof of Theorem 8)
//!   yields strata such that constructive edges only point from later to
//!   earlier strata. "Stratified construction" for plain Sequence Datalog
//!   (Section 5, Example 5.1) is the same condition with `++` as the only
//!   constructive device.
//! * **Program order** (Section 7.1): the maximum order of any transducer
//!   mentioned; a transducer-free program has order 0.
//!
//! This module keeps the string-keyed API but owns no graph algorithms:
//! the graph, its SCC condensation, and the stratum levels all come from
//! [`crate::analysis::graph`] — the same implementation that drives the
//! evaluator's stratified schedule and the lint engine. Database-only
//! predicates (legal since retractable sessions) participate as source
//! nodes via [`DependencyGraph::build_with_db`] / [`analyze_with_db`].

use crate::analysis::graph::{Condensation, GraphBuilder, PredGraph};
use crate::ast::{Clause, Program};
use crate::database::Database;
use crate::registry::TransducerRegistry;
use seqlog_sequence::FxHashMap;

/// One edge of the predicate dependency graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Head predicate.
    pub from: String,
    /// Body predicate.
    pub to: String,
    /// Whether some clause inducing this edge is constructive.
    pub constructive: bool,
}

/// The predicate dependency graph of a program.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    /// Predicate names (graph nodes) in first-occurrence order, followed by
    /// any database-only predicates.
    pub nodes: Vec<String>,
    /// Deduplicated edges; parallel constructive/non-constructive edges are
    /// merged with `constructive = true` winning.
    pub edges: Vec<DepEdge>,
    /// The dense-id graph backing `nodes`/`edges` (node `i` is `nodes[i]`).
    graph: PredGraph,
}

impl DependencyGraph {
    /// Build the graph (Definition 9) from the program's clauses alone.
    pub fn build(program: &Program) -> Self {
        Self::build_with_preds(program, std::iter::empty())
    }

    /// Build the graph with a database's predicates included: predicates
    /// that only occur as stored facts — never in a clause — become
    /// isolated *source* nodes (stratum 0) instead of being omitted.
    pub fn build_with_db(program: &Program, db: &Database) -> Self {
        Self::build_with_preds(program, db.iter().map(|(p, _)| p))
    }

    /// Build with extra (database-only) predicate names appended as nodes.
    fn build_with_preds<'a>(program: &Program, extra: impl Iterator<Item = &'a str>) -> Self {
        let mut nodes = program.predicates();
        for p in extra {
            if !nodes.iter().any(|n| n == p) {
                nodes.push(p.to_string());
            }
        }
        let index: FxHashMap<&str, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as u32))
            .collect();
        let mut b = GraphBuilder::new(nodes.len());
        for clause in &program.clauses {
            let from = index[clause.head.pred.as_str()];
            let constructive = clause.is_constructive();
            for q in clause.body_preds() {
                b.edge(from, index[q], constructive);
            }
        }
        let graph = b.finish();
        let mut edges: Vec<DepEdge> = graph
            .edges()
            .iter()
            .map(|e| DepEdge {
                from: nodes[e.from as usize].clone(),
                to: nodes[e.to as usize].clone(),
                constructive: e.constructive,
            })
            .collect();
        edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
        nodes.shrink_to_fit();
        Self {
            nodes,
            edges,
            graph,
        }
    }

    /// The SCC condensation of the backing dense-id graph.
    fn condense(&self) -> Condensation {
        self.graph.condense()
    }

    /// Strongly connected components (iterative Tarjan, shared with
    /// [`crate::analysis`]), returned as a map from predicate to component
    /// id; component ids are in reverse topological order (callees first).
    pub fn sccs(&self) -> FxHashMap<String, usize> {
        let cond = self.condense();
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), cond.comp[i] as usize))
            .collect()
    }

    /// The constructive edges lying inside an SCC — each witnesses a
    /// constructive cycle (Definition 10).
    pub fn constructive_cycle_edges(&self) -> Vec<DepEdge> {
        self.violations(&self.condense())
    }

    fn violations(&self, cond: &Condensation) -> Vec<DepEdge> {
        self.graph
            .constructive_cycle_edges(cond)
            .iter()
            .map(|e| DepEdge {
                from: self.nodes[e.from as usize].clone(),
                to: self.nodes[e.to as usize].clone(),
                constructive: true,
            })
            .collect()
    }
}

/// Result of static analysis.
#[derive(Clone, Debug)]
pub struct SafetyReport {
    /// The dependency graph.
    pub graph: DependencyGraph,
    /// Constructive edges inside cycles (empty iff strongly safe).
    pub violations: Vec<DepEdge>,
    /// Strong safety (Definition 10).
    pub strongly_safe: bool,
    /// Whether every clause is guarded (Appendix B).
    pub guarded: bool,
    /// Whether the program is non-constructive (Theorem 3 fragment).
    pub non_constructive: bool,
    /// Program order: max order of mentioned transducers; `++`-only
    /// constructive programs have order 1 (concatenation is an order-1
    /// machine), non-constructive programs order 0.
    pub order: usize,
    /// Stratum per predicate (0 = lowest); only meaningful when strongly
    /// safe. Constructive edges point from strictly higher to lower strata.
    pub strata: FxHashMap<String, usize>,
}

/// Analyze a program against a registry (for transducer orders).
pub fn analyze(program: &Program, registry: &TransducerRegistry) -> SafetyReport {
    analyze_graph(DependencyGraph::build(program), program, registry)
}

/// Analyze a program together with a database: database-only predicates
/// appear in the graph and the strata as sources (level 0).
pub fn analyze_with_db(
    program: &Program,
    registry: &TransducerRegistry,
    db: &Database,
) -> SafetyReport {
    analyze_graph(
        DependencyGraph::build_with_db(program, db),
        program,
        registry,
    )
}

fn analyze_graph(
    graph: DependencyGraph,
    program: &Program,
    registry: &TransducerRegistry,
) -> SafetyReport {
    let cond = graph.condense();
    let violations = graph.violations(&cond);
    let strongly_safe = violations.is_empty();

    let guarded = program.clauses.iter().all(is_guarded);
    let non_constructive = program.is_non_constructive();

    let transducer_names = program.transducer_names();
    let machine_order = registry.program_order(transducer_names.iter().map(String::as_str));
    // Constructive programs have order >= 1 whichever constructive device
    // they use (`++` and transducer terms alike, Section 7.1).
    let order = if non_constructive {
        0
    } else {
        machine_order.max(1)
    };

    // Strata: the condensation's topological levels, keyed back by name.
    let strata = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(i, s)| (s.clone(), cond.level_of(i as u32) as usize))
        .collect();

    SafetyReport {
        graph,
        violations,
        strongly_safe,
        guarded,
        non_constructive,
        order,
        strata,
    }
}

/// Appendix B guardedness of a single clause: every sequence variable
/// occurs in the body as a whole argument of some atom.
pub fn is_guarded(clause: &Clause) -> bool {
    use crate::ast::{BodyLit, SeqTerm};
    let mut seq_vars = Vec::new();
    let mut idx_vars = Vec::new();
    for t in &clause.head.args {
        t.vars(&mut seq_vars, &mut idx_vars);
    }
    for l in &clause.body {
        match l {
            BodyLit::Atom(a) => {
                for t in &a.args {
                    t.vars(&mut seq_vars, &mut idx_vars);
                }
            }
            BodyLit::Eq(a, b) | BodyLit::Neq(a, b) => {
                a.vars(&mut seq_vars, &mut idx_vars);
                b.vars(&mut seq_vars, &mut idx_vars);
            }
        }
    }
    seq_vars.sort();
    seq_vars.dedup();
    seq_vars.into_iter().all(|v| {
        clause.body.iter().any(|l| match l {
            BodyLit::Atom(a) => a
                .args
                .iter()
                .any(|t| matches!(t, SeqTerm::Var(x) if *x == v)),
            _ => false,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use seqlog_sequence::{Alphabet, SeqStore};

    fn report(src: &str) -> SafetyReport {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let p = parse_program(src, &mut a, &mut st).unwrap();
        analyze(&p, &TransducerRegistry::new())
    }

    #[test]
    fn example_8_1_p1_is_strongly_safe() {
        // P1: mutual recursion between p and q, with construction feeding r
        // from a non-recursive clause — no constructive cycle.
        let r = report(
            "p(X) :- r(X, Y), q(Y).\n\
             q(X) :- r(X, Y), p(Y).\n\
             r(@t1(X), @t2(Y)) :- a(X, Y).",
        );
        assert!(r.strongly_safe, "violations: {:?}", r.violations);
    }

    #[test]
    fn example_8_1_p2_is_not_strongly_safe() {
        // P2: p(T(X)) :- p(X) — a constructive self-loop.
        let r = report("p(@t(X)) :- p(X).");
        assert!(!r.strongly_safe);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].from, "p");
        assert_eq!(r.violations[0].to, "p");
    }

    #[test]
    fn example_8_1_p3_is_not_strongly_safe() {
        // P3: q → r (plain), r → p (constructive), p → q (plain): the
        // constructive edge lies on the 3-cycle.
        let r = report(
            "q(X) :- r(X).\n\
             r(@t(X)) :- p(X).\n\
             p(X) :- q(X).",
        );
        assert!(!r.strongly_safe);
        assert!(r.violations.iter().any(|e| e.from == "r" && e.to == "p"));
    }

    #[test]
    fn rep2_is_not_strongly_safe_but_rep1_is() {
        // Example 1.5.
        let rep1 = report(
            "rep1(X, X) :- seq(X).\n\
             rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).",
        );
        assert!(rep1.strongly_safe);
        assert!(rep1.non_constructive);
        assert_eq!(rep1.order, 0);

        let rep2 = report(
            "rep2(X, X) :- seq(X).\n\
             rep2(X ++ Y, Y) :- rep2(X, Y).",
        );
        assert!(!rep2.strongly_safe);
        assert!(!rep2.non_constructive);
    }

    #[test]
    fn example_5_1_stratified_construction_is_strongly_safe() {
        let r = report(
            "double(X ++ X) :- r(X).\n\
             quadruple(X ++ X) :- double(X).",
        );
        assert!(r.strongly_safe);
        // Strata: r at 0, double at 1, quadruple at 2.
        assert_eq!(r.strata["r"], 0);
        assert_eq!(r.strata["double"], 1);
        assert_eq!(r.strata["quadruple"], 2);
    }

    #[test]
    fn echo_program_is_not_strongly_safe() {
        // Example 1.6.
        let r = report(
            "answer(X, Y) :- rel(X), echo(X, Y).\n\
             echo(\"\", \"\").\n\
             echo(X[1] ++ X[1] ++ Z, W) :- echo(X[2:end], Z).",
        );
        // The recursive constructive clause has head pred echo and body pred
        // echo — a constructive self-loop.
        assert!(!r.strongly_safe);
    }

    #[test]
    fn guardedness_examples_from_section_3_1() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let p = parse_program("p(X[1]) :- q(X).\np(X) :- q(X[1]).", &mut a, &mut st).unwrap();
        assert!(is_guarded(&p.clauses[0]));
        assert!(!is_guarded(&p.clauses[1]));
    }

    #[test]
    fn scc_handles_self_loops_and_chains() {
        let r = report(
            "a(X) :- b(X).\n\
             b(X) :- a(X).\n\
             c(X) :- b(X).",
        );
        let scc = r.graph.sccs();
        assert_eq!(scc["a"], scc["b"]);
        assert_ne!(scc["a"], scc["c"]);
        assert!(r.strongly_safe);
    }

    #[test]
    fn non_constructive_program_has_order_zero() {
        let r = report("suffix(X[N:end]) :- r(X).");
        assert!(r.non_constructive);
        assert_eq!(r.order, 0);
        assert!(r.strongly_safe);
    }

    #[test]
    fn database_only_predicates_are_graph_sources() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let p = parse_program("p(X) :- q(X).", &mut a, &mut st).unwrap();
        let syms: Vec<_> = "abc".chars().map(|c| a.intern_char(c)).collect();
        let id = st.intern(&syms);
        let mut db = Database::new();
        db.add("q", vec![id]);
        db.add("extra", vec![id]);

        // `build` omits the database-only predicate; `build_with_db`
        // includes it as an isolated source node.
        let plain = DependencyGraph::build(&p);
        assert!(!plain.nodes.iter().any(|n| n == "extra"));
        let g = DependencyGraph::build_with_db(&p, &db);
        assert!(g.nodes.iter().any(|n| n == "extra"));
        assert!(g.sccs().contains_key("extra"));

        let r = analyze_with_db(&p, &TransducerRegistry::new(), &db);
        assert_eq!(r.strata["extra"], 0);
        assert_eq!(r.strata["q"], 0);
        assert_eq!(r.strata["p"], 1);
        assert!(r.strongly_safe);
    }
}
