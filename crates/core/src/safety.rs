//! Safety analysis (Sections 5 and 8).
//!
//! * **Predicate dependency graph** (Definition 9): nodes are predicate
//!   names; an edge `p → q` exists when some clause has head predicate `p`
//!   and body predicate `q`; the edge is *constructive* when that clause is
//!   constructive (head contains `++` or a transducer term, Definition 8).
//! * A **constructive cycle** is a cycle containing a constructive edge;
//!   a program is **strongly safe** when its graph has none
//!   (Definition 10) — equivalently, no constructive edge connects two
//!   predicates in the same strongly connected component.
//! * **Stratification**: linearizing the SCCs (the proof of Theorem 8)
//!   yields strata such that constructive edges only point from later to
//!   earlier strata. "Stratified construction" for plain Sequence Datalog
//!   (Section 5, Example 5.1) is the same condition with `++` as the only
//!   constructive device.
//! * **Program order** (Section 7.1): the maximum order of any transducer
//!   mentioned; a transducer-free program has order 0.

use crate::ast::{Clause, Program};
use crate::registry::TransducerRegistry;
use seqlog_sequence::FxHashMap;

/// One edge of the predicate dependency graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Head predicate.
    pub from: String,
    /// Body predicate.
    pub to: String,
    /// Whether some clause inducing this edge is constructive.
    pub constructive: bool,
}

/// The predicate dependency graph of a program.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    /// Predicate names (graph nodes) in first-occurrence order.
    pub nodes: Vec<String>,
    /// Deduplicated edges; parallel constructive/non-constructive edges are
    /// merged with `constructive = true` winning.
    pub edges: Vec<DepEdge>,
}

impl DependencyGraph {
    /// Build the graph (Definition 9).
    pub fn build(program: &Program) -> Self {
        let mut nodes = program.predicates();
        let mut index: FxHashMap<String, usize> = FxHashMap::default();
        for (i, n) in nodes.iter().enumerate() {
            index.insert(n.clone(), i);
        }
        let mut edge_map: FxHashMap<(usize, usize), bool> = FxHashMap::default();
        for clause in &program.clauses {
            let from = index[&clause.head.pred];
            let constructive = clause.is_constructive();
            for q in clause.body_preds() {
                let to = index[q];
                let e = edge_map.entry((from, to)).or_insert(false);
                *e |= constructive;
            }
        }
        let mut edges: Vec<DepEdge> = edge_map
            .into_iter()
            .map(|((f, t), c)| DepEdge {
                from: nodes[f].clone(),
                to: nodes[t].clone(),
                constructive: c,
            })
            .collect();
        edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
        nodes.shrink_to_fit();
        Self { nodes, edges }
    }

    /// Strongly connected components (iterative Tarjan), returned as a map
    /// from predicate to component id; component ids are in reverse
    /// topological order (callees first).
    pub fn sccs(&self) -> FxHashMap<String, usize> {
        let n = self.nodes.len();
        let index_of: FxHashMap<&str, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i))
            .collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[index_of[e.from.as_str()]].push(index_of[e.to.as_str()]);
        }

        // Iterative Tarjan.
        let mut ids = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut disc = vec![usize::MAX; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut counter = 0usize;
        let mut comp = 0usize;

        for root in 0..n {
            if disc[root] != usize::MAX {
                continue;
            }
            // (node, next child index)
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                if *ci == 0 {
                    disc[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ci < adj[v].len() {
                    let w = adj[v][*ci];
                    *ci += 1;
                    if disc[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(disc[w]);
                    }
                } else {
                    if low[v] == disc[v] {
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            ids[w] = comp;
                            if w == v {
                                break;
                            }
                        }
                        comp += 1;
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }

        self.nodes
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), ids[i]))
            .collect()
    }

    /// The constructive edges lying inside an SCC — each witnesses a
    /// constructive cycle (Definition 10).
    pub fn constructive_cycle_edges(&self) -> Vec<DepEdge> {
        let scc = self.sccs();
        self.edges
            .iter()
            .filter(|e| e.constructive && scc[&e.from] == scc[&e.to])
            .cloned()
            .collect()
    }
}

/// Result of static analysis.
#[derive(Clone, Debug)]
pub struct SafetyReport {
    /// The dependency graph.
    pub graph: DependencyGraph,
    /// Constructive edges inside cycles (empty iff strongly safe).
    pub violations: Vec<DepEdge>,
    /// Strong safety (Definition 10).
    pub strongly_safe: bool,
    /// Whether every clause is guarded (Appendix B).
    pub guarded: bool,
    /// Whether the program is non-constructive (Theorem 3 fragment).
    pub non_constructive: bool,
    /// Program order: max order of mentioned transducers; `++`-only
    /// constructive programs have order 1 (concatenation is an order-1
    /// machine), non-constructive programs order 0.
    pub order: usize,
    /// Stratum per predicate (0 = lowest); only meaningful when strongly
    /// safe. Constructive edges point from strictly higher to lower strata.
    pub strata: FxHashMap<String, usize>,
}

/// Analyze a program against a registry (for transducer orders).
pub fn analyze(program: &Program, registry: &TransducerRegistry) -> SafetyReport {
    let graph = DependencyGraph::build(program);
    let violations = graph.constructive_cycle_edges();
    let strongly_safe = violations.is_empty();

    let guarded = program.clauses.iter().all(is_guarded);
    let non_constructive = program.is_non_constructive();

    let transducer_names = program.transducer_names();
    let machine_order = registry.program_order(transducer_names.iter().map(String::as_str));
    // Constructive programs have order >= 1 whichever constructive device
    // they use (`++` and transducer terms alike, Section 7.1).
    let order = if non_constructive {
        0
    } else {
        machine_order.max(1)
    };

    // Strata: SCC condensation levels, where the level of a component is
    // 1 + max level over successors (callees below).
    let scc = graph.sccs();
    let mut strata: FxHashMap<String, usize> = FxHashMap::default();
    // Component -> members and successor components.
    let ncomp = scc.values().copied().max().map_or(0, |m| m + 1);
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for e in &graph.edges {
        let (a, b) = (scc[&e.from], scc[&e.to]);
        if a != b {
            succs[a].push(b);
        }
    }
    // Tarjan ids are in reverse topological order: callees have smaller ids,
    // so computing levels in increasing id order sees successors first.
    let mut level = vec![0usize; ncomp];
    for c in 0..ncomp {
        level[c] = succs[c].iter().map(|&s| level[s] + 1).max().unwrap_or(0);
    }
    for (pred, comp) in &scc {
        strata.insert(pred.clone(), level[*comp]);
    }

    SafetyReport {
        graph,
        violations,
        strongly_safe,
        guarded,
        non_constructive,
        order,
        strata,
    }
}

/// Appendix B guardedness of a single clause: every sequence variable
/// occurs in the body as a whole argument of some atom.
pub fn is_guarded(clause: &Clause) -> bool {
    use crate::ast::{BodyLit, SeqTerm};
    let mut seq_vars = Vec::new();
    let mut idx_vars = Vec::new();
    for t in &clause.head.args {
        t.vars(&mut seq_vars, &mut idx_vars);
    }
    for l in &clause.body {
        match l {
            BodyLit::Atom(a) => {
                for t in &a.args {
                    t.vars(&mut seq_vars, &mut idx_vars);
                }
            }
            BodyLit::Eq(a, b) | BodyLit::Neq(a, b) => {
                a.vars(&mut seq_vars, &mut idx_vars);
                b.vars(&mut seq_vars, &mut idx_vars);
            }
        }
    }
    seq_vars.sort();
    seq_vars.dedup();
    seq_vars.into_iter().all(|v| {
        clause.body.iter().any(|l| match l {
            BodyLit::Atom(a) => a
                .args
                .iter()
                .any(|t| matches!(t, SeqTerm::Var(x) if *x == v)),
            _ => false,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use seqlog_sequence::{Alphabet, SeqStore};

    fn report(src: &str) -> SafetyReport {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let p = parse_program(src, &mut a, &mut st).unwrap();
        analyze(&p, &TransducerRegistry::new())
    }

    #[test]
    fn example_8_1_p1_is_strongly_safe() {
        // P1: mutual recursion between p and q, with construction feeding r
        // from a non-recursive clause — no constructive cycle.
        let r = report(
            "p(X) :- r(X, Y), q(Y).\n\
             q(X) :- r(X, Y), p(Y).\n\
             r(@t1(X), @t2(Y)) :- a(X, Y).",
        );
        assert!(r.strongly_safe, "violations: {:?}", r.violations);
    }

    #[test]
    fn example_8_1_p2_is_not_strongly_safe() {
        // P2: p(T(X)) :- p(X) — a constructive self-loop.
        let r = report("p(@t(X)) :- p(X).");
        assert!(!r.strongly_safe);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].from, "p");
        assert_eq!(r.violations[0].to, "p");
    }

    #[test]
    fn example_8_1_p3_is_not_strongly_safe() {
        // P3: q → r (plain), r → p (constructive), p → q (plain): the
        // constructive edge lies on the 3-cycle.
        let r = report(
            "q(X) :- r(X).\n\
             r(@t(X)) :- p(X).\n\
             p(X) :- q(X).",
        );
        assert!(!r.strongly_safe);
        assert!(r.violations.iter().any(|e| e.from == "r" && e.to == "p"));
    }

    #[test]
    fn rep2_is_not_strongly_safe_but_rep1_is() {
        // Example 1.5.
        let rep1 = report(
            "rep1(X, X) :- seq(X).\n\
             rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).",
        );
        assert!(rep1.strongly_safe);
        assert!(rep1.non_constructive);
        assert_eq!(rep1.order, 0);

        let rep2 = report(
            "rep2(X, X) :- seq(X).\n\
             rep2(X ++ Y, Y) :- rep2(X, Y).",
        );
        assert!(!rep2.strongly_safe);
        assert!(!rep2.non_constructive);
    }

    #[test]
    fn example_5_1_stratified_construction_is_strongly_safe() {
        let r = report(
            "double(X ++ X) :- r(X).\n\
             quadruple(X ++ X) :- double(X).",
        );
        assert!(r.strongly_safe);
        // Strata: r at 0, double at 1, quadruple at 2.
        assert_eq!(r.strata["r"], 0);
        assert_eq!(r.strata["double"], 1);
        assert_eq!(r.strata["quadruple"], 2);
    }

    #[test]
    fn echo_program_is_not_strongly_safe() {
        // Example 1.6.
        let r = report(
            "answer(X, Y) :- rel(X), echo(X, Y).\n\
             echo(\"\", \"\").\n\
             echo(X[1] ++ X[1] ++ Z, W) :- echo(X[2:end], Z).",
        );
        // The recursive constructive clause has head pred echo and body pred
        // echo — a constructive self-loop.
        assert!(!r.strongly_safe);
    }

    #[test]
    fn guardedness_examples_from_section_3_1() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let p = parse_program("p(X[1]) :- q(X).\np(X) :- q(X[1]).", &mut a, &mut st).unwrap();
        assert!(is_guarded(&p.clauses[0]));
        assert!(!is_guarded(&p.clauses[1]));
    }

    #[test]
    fn scc_handles_self_loops_and_chains() {
        let r = report(
            "a(X) :- b(X).\n\
             b(X) :- a(X).\n\
             c(X) :- b(X).",
        );
        let scc = r.graph.sccs();
        assert_eq!(scc["a"], scc["b"]);
        assert_ne!(scc["a"], scc["c"]);
        assert!(r.strongly_safe);
    }

    #[test]
    fn non_constructive_program_has_order_zero() {
        let r = report("suffix(X[N:end]) :- r(X).");
        assert!(r.non_constructive);
        assert_eq!(r.order, 0);
        assert!(r.strongly_safe);
    }
}
