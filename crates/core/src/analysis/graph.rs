//! The predicate dependency graph over dense node ids (Definition 9).
//!
//! This is the **one** graph implementation in the crate: the AST-level
//! [`crate::safety`] facade and the compile-time [`super::Schedule`] /
//! [`super::ProgramReport`] paths both build a [`PredGraph`] and share its
//! condensation. Nodes are dense `u32` ids — [`crate::compile::PredId`]s on
//! the compiled path, [`crate::compile::PredTable`]-interned names on the
//! AST path — so strongly connected components, topological stratum levels,
//! and constructive-cycle detection run without hashing a predicate-name
//! `String`.

use seqlog_sequence::FxHashMap;

/// One edge of the dependency graph: `from` (a head predicate) depends on
/// `to` (a body predicate of some clause with that head). Parallel edges
/// are merged; `constructive` records whether *some* merged clause is
/// constructive (Definition 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Head-predicate node id.
    pub from: u32,
    /// Body-predicate node id.
    pub to: u32,
    /// True when some clause inducing this edge is constructive.
    pub constructive: bool,
}

/// Accumulates clause dependencies into a deduplicated [`PredGraph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    nodes: usize,
    edges: FxHashMap<(u32, u32), bool>,
}

impl GraphBuilder {
    /// A builder over `nodes` dense node ids (`0..nodes`).
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            edges: FxHashMap::default(),
        }
    }

    /// Record that `from` depends on `to` through a (possibly constructive)
    /// clause. Parallel edges merge with `constructive = true` winning.
    pub fn edge(&mut self, from: u32, to: u32, constructive: bool) {
        *self.edges.entry((from, to)).or_insert(false) |= constructive;
    }

    /// Finish into a [`PredGraph`] with edges sorted by `(from, to)`.
    pub fn finish(self) -> PredGraph {
        let mut edges: Vec<DepEdge> = self
            .edges
            .into_iter()
            .map(|((from, to), constructive)| DepEdge {
                from,
                to,
                constructive,
            })
            .collect();
        edges.sort_by_key(|e| (e.from, e.to));
        PredGraph {
            nodes: self.nodes,
            edges,
        }
    }
}

/// The predicate dependency graph (Definition 9) over dense node ids.
#[derive(Clone, Debug, Default)]
pub struct PredGraph {
    nodes: usize,
    /// Deduplicated edges, sorted by `(from, to)`.
    edges: Vec<DepEdge>,
}

impl PredGraph {
    /// Number of nodes (`0..n` are valid ids whether or not they occur in
    /// an edge — database-only predicates participate as isolated source
    /// nodes).
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// The deduplicated edges, sorted by `(from, to)`.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Condense the graph into strongly connected components (iterative
    /// Tarjan). Component ids come out in **reverse topological order**:
    /// callees (dependencies) receive smaller ids than their callers, so
    /// iterating components in increasing id order visits every
    /// component's successors before the component itself.
    pub fn condense(&self) -> Condensation {
        let n = self.nodes;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.from as usize].push(e.to);
        }

        let mut comp = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut disc = vec![u32::MAX; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut counter = 0u32;
        let mut next_comp = 0u32;

        for root in 0..n {
            if disc[root] != u32::MAX {
                continue;
            }
            // Explicit call stack: (node, next child index).
            let mut call: Vec<(u32, usize)> = vec![(root as u32, 0)];
            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                let vi = v as usize;
                if *ci == 0 {
                    disc[vi] = counter;
                    low[vi] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[vi] = true;
                }
                if *ci < adj[vi].len() {
                    let w = adj[vi][*ci];
                    *ci += 1;
                    let wi = w as usize;
                    if disc[wi] == u32::MAX {
                        call.push((w, 0));
                    } else if on_stack[wi] {
                        low[vi] = low[vi].min(disc[wi]);
                    }
                } else {
                    if low[vi] == disc[vi] {
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            comp[w as usize] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        let pi = parent as usize;
                        low[pi] = low[pi].min(low[vi]);
                    }
                }
            }
        }

        // Stratum levels: a component's level is 1 + the maximum level of
        // its (cross-component) successors; components without successors
        // — sources, including database-only predicates — sit at level 0.
        // Increasing component id sees successors first (reverse topology).
        let ncomp = next_comp as usize;
        let mut level = vec![0u32; ncomp];
        for e in &self.edges {
            let (a, b) = (comp[e.from as usize], comp[e.to as usize]);
            if a != b {
                level[a as usize] = level[a as usize].max(level[b as usize] + 1);
            }
        }
        // The max-over-successors recurrence above is order-sensitive only
        // through already-final successor levels; a second sweep is not
        // needed because `b < a` for every cross-component edge.
        Condensation {
            comp,
            n_comps: ncomp,
            levels: level,
        }
    }

    /// The constructive edges lying inside a strongly connected component —
    /// each witnesses a constructive cycle (Definition 10), so the list is
    /// empty iff the program is strongly safe.
    pub fn constructive_cycle_edges(&self, cond: &Condensation) -> Vec<DepEdge> {
        self.edges
            .iter()
            .filter(|e| e.constructive && cond.comp[e.from as usize] == cond.comp[e.to as usize])
            .copied()
            .collect()
    }
}

/// The SCC condensation of a [`PredGraph`], with topological stratum
/// levels.
#[derive(Clone, Debug, Default)]
pub struct Condensation {
    /// Component id per node. Ids are in reverse topological order:
    /// `comp[to] <= comp[from]` for every edge, with equality exactly
    /// inside an SCC.
    pub comp: Vec<u32>,
    /// Number of components.
    pub n_comps: usize,
    /// Stratum level per component id: sources (no outgoing
    /// cross-component edges) at 0, every other component one above its
    /// highest successor.
    pub levels: Vec<u32>,
}

impl Condensation {
    /// The stratum level of a node.
    pub fn level_of(&self, node: u32) -> u32 {
        self.levels[self.comp[node as usize] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(u32, u32, bool)]) -> PredGraph {
        let mut b = GraphBuilder::new(n);
        for &(f, t, c) in edges {
            b.edge(f, t, c);
        }
        b.finish()
    }

    #[test]
    fn parallel_edges_merge_constructively() {
        let g = graph(2, &[(0, 1, false), (0, 1, true)]);
        assert_eq!(g.edges().len(), 1);
        assert!(g.edges()[0].constructive);
    }

    #[test]
    fn condensation_orders_callees_first() {
        // 2 -> 1 -> 0: component ids must increase along the caller chain.
        let g = graph(3, &[(2, 1, false), (1, 0, false)]);
        let c = g.condense();
        assert_eq!(c.n_comps, 3);
        assert!(c.comp[0] < c.comp[1]);
        assert!(c.comp[1] < c.comp[2]);
        assert_eq!(c.level_of(0), 0);
        assert_eq!(c.level_of(1), 1);
        assert_eq!(c.level_of(2), 2);
    }

    #[test]
    fn cycles_collapse_and_isolated_nodes_are_sources() {
        // 0 <-> 1 feeding from 2; node 3 is isolated (database-only).
        let g = graph(4, &[(0, 1, false), (1, 0, false), (0, 2, false)]);
        let c = g.condense();
        assert_eq!(c.comp[0], c.comp[1]);
        assert_ne!(c.comp[0], c.comp[2]);
        assert_eq!(c.level_of(2), 0);
        assert_eq!(c.level_of(3), 0);
        assert_eq!(c.level_of(0), 1);
    }

    #[test]
    fn constructive_cycle_edges_detect_self_loops() {
        let g = graph(2, &[(0, 0, true), (0, 1, true)]);
        let c = g.condense();
        let bad = g.constructive_cycle_edges(&c);
        assert_eq!(bad.len(), 1);
        assert_eq!((bad[0].from, bad[0].to), (0, 0));
    }
}
