//! Machine-level analysis and compile-time fusion of transducer chains.
//!
//! Walks every clause's head terms for *chains* of 1-input transducer
//! calls (`@outer(@inner(X))` and deeper) and the registry's unary chain
//! [`Network`]s, and collapses each chain into one trimmed, determinized,
//! minimized machine via the transducer algebra
//! ([`seqlog_transducer::algebra`]). Evaluation then runs one
//! deterministic pass per derived tuple instead of a chain of machine
//! executions (and one interning round-trip instead of one per stage).
//!
//! The pass is a *pure rewrite*: the fused machine computes exactly the
//! composed sequence function, so the evaluation extent is bit-for-bit
//! identical with fusion on or off (`EvalConfig::danger_disable_fusion` is
//! the mutation hook the differential fuzz suite uses to prove it).
//!
//! Verdicts surface as lints:
//!
//! * `SL007` (error) — a head term calls a registered relation that is not
//!   functional: the call's value is ill-defined;
//! * `SL008` (warning) — a called machine has dead states, with trim
//!   counts;
//! * `SL009` (info) — a fusable chain, with the fused machine size and
//!   whether fusion was applied or declined (with the reason, e.g. the
//!   determinization blow-up cap).

use super::lint::{Diagnostic, LintCode};
use crate::compile::{CSeq, CompiledProgram};
use crate::registry::TransducerRegistry;
use seqlog_sequence::FxHashMap;
use seqlog_transducer::algebra::{AlgebraError, DeterminizeCaps};
use seqlog_transducer::Transducer;

/// Caps governing when fusion is declined rather than attempted.
#[derive(Clone, Copy, Debug, Default)]
pub struct FuseLimits {
    /// Determinization blow-up caps (subset count, delay-buffer length).
    pub det_caps: DeterminizeCaps,
}

/// One fusion decision, reported in
/// [`crate::analysis::ProgramReport::fusion`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusionDecision {
    /// 0-based clause index for head-term chains; `None` for registered
    /// networks.
    pub clause: Option<usize>,
    /// Machine names in application order (innermost/first machine first).
    pub chain: Vec<String>,
    /// Name the fused machine is (or would be) registered under.
    pub fused_name: String,
    /// Whether the chain was actually collapsed.
    pub applied: bool,
    /// Why fusion was declined (empty when applied).
    pub reason: String,
    /// Total states across the chain's machines.
    pub chain_states: usize,
    /// Total transitions across the chain's machines.
    pub chain_transitions: usize,
    /// States of the fused machine (0 when declined).
    pub fused_states: usize,
    /// Transitions of the fused machine (0 when declined).
    pub fused_transitions: usize,
}

impl FusionDecision {
    /// Render the chain as `@a;@b;@c` (application order).
    pub fn chain_display(&self) -> String {
        self.chain
            .iter()
            .map(|n| format!("@{n}"))
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// The result of [`fuse_program`].
#[derive(Debug, Default)]
pub struct FusePass {
    /// Machine-level diagnostics (`SL007`–`SL009`).
    pub diagnostics: Vec<Diagnostic>,
    /// All fusion decisions (applied and declined).
    pub decisions: Vec<FusionDecision>,
    /// When at least one chain fused: the rewritten program plus the fused
    /// machines to register (under their [`FusionDecision::fused_name`]s).
    pub fused: Option<(CompiledProgram, Vec<(String, Transducer)>)>,
}

/// Fuse a chain of 1-input order-1 machines (application order) into one
/// trimmed, determinized, minimized runtime machine named `name`.
pub fn fuse_chain(
    name: &str,
    machines: &[&Transducer],
    caps: &DeterminizeCaps,
) -> Result<Transducer, AlgebraError> {
    assert!(!machines.is_empty());
    let end = machines[0].end_marker;
    let mut fst = machines[0].algebra()?;
    for t in &machines[1..] {
        if t.end_marker != end {
            return Err(AlgebraError::Unsupported {
                name: t.name.clone(),
                reason: "machines in the chain use different end markers".into(),
            });
        }
        fst = fst.compose(&t.algebra()?);
    }
    let min = fst.trim().determinize(caps)?.minimize()?;
    min.to_transducer(name, end)
}

/// Collect every machine name referenced by transducer terms in `term`.
fn collect_refs(term: &CSeq, out: &mut Vec<String>) {
    match term {
        CSeq::Const(_) | CSeq::Var(_) | CSeq::Indexed { .. } => {}
        CSeq::Concat(a, b) => {
            collect_refs(a, out);
            collect_refs(b, out);
        }
        CSeq::Transducer { name, args } => {
            out.push(name.clone());
            for a in args {
                collect_refs(a, out);
            }
        }
    }
}

/// Collect maximal nesting chains of unary transducer calls (≥ 2 machines),
/// in application order (innermost call first).
fn collect_chains(term: &CSeq, out: &mut Vec<Vec<String>>) {
    match term {
        CSeq::Const(_) | CSeq::Var(_) | CSeq::Indexed { .. } => {}
        CSeq::Concat(a, b) => {
            collect_chains(a, out);
            collect_chains(b, out);
        }
        CSeq::Transducer { name, args } => {
            let mut names = vec![name.clone()];
            let mut base: &[CSeq] = args;
            while base.len() == 1 {
                if let CSeq::Transducer { name: n, args: a } = &base[0] {
                    names.push(n.clone());
                    base = a;
                } else {
                    break;
                }
            }
            if names.len() >= 2 {
                names.reverse();
                out.push(names);
            }
            for a in base {
                collect_chains(a, out);
            }
        }
    }
}

/// Rewrite `term`, replacing every chain found in `plan` (keyed by
/// application-order names) with a single call to the fused machine.
fn rewrite(term: &CSeq, plan: &FxHashMap<Vec<String>, String>) -> CSeq {
    match term {
        CSeq::Const(_) | CSeq::Var(_) | CSeq::Indexed { .. } => term.clone(),
        CSeq::Concat(a, b) => CSeq::Concat(Box::new(rewrite(a, plan)), Box::new(rewrite(b, plan))),
        CSeq::Transducer { name, args } => {
            let mut names = vec![name.clone()];
            let mut base: &[CSeq] = args;
            while base.len() == 1 {
                if let CSeq::Transducer { name: n, args: a } = &base[0] {
                    names.push(n.clone());
                    base = a;
                } else {
                    break;
                }
            }
            names.reverse();
            if let Some(fused) = plan.get(&names) {
                return CSeq::Transducer {
                    name: fused.clone(),
                    args: base.iter().map(|a| rewrite(a, plan)).collect(),
                };
            }
            CSeq::Transducer {
                name: name.clone(),
                args: args.iter().map(|a| rewrite(a, plan)).collect(),
            }
        }
    }
}

/// The synthesized registry name for a fused chain.
fn fused_name(chain: &[String]) -> String {
    format!("fused${}", chain.join("$"))
}

/// Try to fuse one chain against the registry; returns either the fused
/// machine with its sizes, or the decline reason.
fn try_fuse(
    chain: &[String],
    registry: &TransducerRegistry,
    limits: &FuseLimits,
) -> (FusionDecision, Option<Transducer>) {
    let mut decision = FusionDecision {
        clause: None,
        chain: chain.to_vec(),
        fused_name: fused_name(chain),
        applied: false,
        reason: String::new(),
        chain_states: 0,
        chain_transitions: 0,
        fused_states: 0,
        fused_transitions: 0,
    };
    let mut machines: Vec<&Transducer> = Vec::with_capacity(chain.len());
    for name in chain {
        match registry.get(name) {
            Some(t) => machines.push(t),
            None => {
                decision.reason = format!("machine `{name}` is not registered");
                return (decision, None);
            }
        }
    }
    decision.chain_states = machines.iter().map(|t| t.num_states()).sum();
    decision.chain_transitions = machines.iter().map(|t| t.num_transitions()).sum();
    for t in &machines {
        if let Some(f) = registry.fst(&t.name) {
            if !f.is_functional() {
                decision.reason = format!("machine `{}` is not functional", t.name);
                return (decision, None);
            }
        }
    }
    match fuse_chain(&decision.fused_name.clone(), &machines, &limits.det_caps) {
        Ok(t) => {
            decision.fused_states = t.num_states();
            decision.fused_transitions = t.num_transitions();
            decision.applied = true;
            (decision, Some(t))
        }
        Err(e) => {
            decision.reason = e.to_string();
            (decision, None)
        }
    }
}

/// Analyze (and, where possible, fuse) the transducer machinery of a
/// compiled program against a registry.
///
/// Always produces diagnostics and decisions; produces a rewritten program
/// only when at least one head chain fused. Callers gate *applying* the
/// rewrite on [`crate::eval::EvalConfig::danger_disable_fusion`]; the
/// analysis itself is unconditional so reports do not depend on evaluation
/// configuration.
pub fn fuse_program(
    program: &CompiledProgram,
    registry: &TransducerRegistry,
    limits: &FuseLimits,
) -> FusePass {
    let mut pass = FusePass::default();
    let has_transducer_heads = program
        .clauses
        .iter()
        .any(|c| c.head.args.iter().any(has_transducer));
    if !has_transducer_heads && registry.network_names().next().is_none() {
        return pass;
    }

    // Per-clause machine references (SL007 / SL008) and chains (SL009).
    let mut referenced: Vec<(usize, String)> = Vec::new();
    let mut clause_chains: Vec<(usize, Vec<String>)> = Vec::new();
    for (ci, clause) in program.clauses.iter().enumerate() {
        let mut refs = Vec::new();
        let mut chains = Vec::new();
        for arg in &clause.head.args {
            collect_refs(arg, &mut refs);
            collect_chains(arg, &mut chains);
        }
        refs.sort();
        refs.dedup();
        referenced.extend(refs.into_iter().map(|n| (ci, n)));
        clause_chains.extend(chains.into_iter().map(|c| (ci, c)));
    }

    // SL007: per (clause, machine) calls of registered non-functional
    // relations.
    for (ci, name) in &referenced {
        if let Some(f) = registry.fst(name) {
            if !f.is_functional() {
                pass.diagnostics.push(Diagnostic::new(
                    LintCode::NonFunctionalTransducerCall,
                    Some(*ci),
                    Some(name.clone()),
                    format!(
                        "head term calls `@{name}`, which is not functional: it can emit \
                         two distinct outputs for one input, so the call's value is \
                         ill-defined"
                    ),
                ));
            }
        }
    }

    // SL008: dead states, once per distinct referenced machine.
    let mut distinct: Vec<&String> = referenced.iter().map(|(_, n)| n).collect();
    distinct.sort();
    distinct.dedup();
    for name in distinct {
        let fst = match registry.fst(name) {
            Some(f) => Some(f.clone()),
            None => registry.get(name).and_then(|t| t.algebra().ok()),
        };
        let Some(fst) = fst else { continue };
        let trimmed = fst.trim();
        if trimmed.num_states() < fst.num_states() {
            pass.diagnostics.push(Diagnostic::new(
                LintCode::DeadTransducerStates,
                None,
                Some(name.clone()),
                format!(
                    "machine `@{name}` has {} dead state(s) (trim: {} -> {} states, \
                     {} -> {} transitions)",
                    fst.num_states() - trimmed.num_states(),
                    fst.num_states(),
                    trimmed.num_states(),
                    fst.num_arcs(),
                    trimmed.num_arcs(),
                ),
            ));
        }
    }

    // SL009: fuse each distinct chain once, report per occurrence.
    let mut fused_machines: Vec<(String, Transducer)> = Vec::new();
    let mut plan: FxHashMap<Vec<String>, String> = FxHashMap::default();
    let mut tried: FxHashMap<Vec<String>, FusionDecision> = FxHashMap::default();
    for (ci, chain) in &clause_chains {
        let decision = match tried.get(chain) {
            Some(d) => d.clone(),
            None => {
                let (d, machine) = try_fuse(chain, registry, limits);
                if let Some(m) = machine {
                    plan.insert(chain.clone(), d.fused_name.clone());
                    fused_machines.push((d.fused_name.clone(), m));
                }
                tried.insert(chain.clone(), d.clone());
                d
            }
        };
        let message = if decision.applied {
            format!(
                "transducer chain {} fused into `@{}`: {} states / {} transitions \
                 -> {} states / {} transitions (applied)",
                decision.chain_display(),
                decision.fused_name,
                decision.chain_states,
                decision.chain_transitions,
                decision.fused_states,
                decision.fused_transitions,
            )
        } else {
            format!(
                "transducer chain {} is fusable but fusion was declined: {}",
                decision.chain_display(),
                decision.reason,
            )
        };
        pass.diagnostics.push(Diagnostic::new(
            LintCode::FusableTransducerChain,
            Some(*ci),
            None,
            message,
        ));
        pass.decisions.push(FusionDecision {
            clause: Some(*ci),
            ..decision
        });
    }

    // Registered networks: unary chains were fused at registration time
    // ([`TransducerRegistry::register_network`]); report the decision here
    // so `ProgramReport` covers them too.
    let mut network_names: Vec<&str> = registry.network_names().collect();
    network_names.sort_unstable();
    for name in network_names {
        let net = registry.network(name).expect("listed name resolves");
        let Some(machines) = net.chain_machines() else {
            pass.decisions.push(FusionDecision {
                clause: None,
                chain: Vec::new(),
                fused_name: name.to_string(),
                applied: false,
                reason: format!(
                    "network `{name}` is not a unary chain of 1-input machines \
                     ({} inputs, {} machines)",
                    net.num_inputs(),
                    net.num_machines()
                ),
                chain_states: 0,
                chain_transitions: 0,
                fused_states: 0,
                fused_transitions: 0,
            });
            continue;
        };
        let chain: Vec<String> = machines.iter().map(|t| t.name.clone()).collect();
        let cached = registry.get(name);
        let applied = cached.is_some();
        pass.decisions.push(FusionDecision {
            clause: None,
            chain,
            fused_name: name.to_string(),
            applied,
            reason: if applied {
                String::new()
            } else {
                match fuse_chain(name, &machines, &limits.det_caps) {
                    Ok(_) => "fused machine was not cached in the registry".to_string(),
                    Err(e) => e.to_string(),
                }
            },
            chain_states: machines.iter().map(|t| t.num_states()).sum(),
            chain_transitions: machines.iter().map(|t| t.num_transitions()).sum(),
            fused_states: cached.map_or(0, Transducer::num_states),
            fused_transitions: cached.map_or(0, Transducer::num_transitions),
        });
    }

    if !plan.is_empty() {
        let mut rewritten = program.clone();
        for clause in &mut rewritten.clauses {
            for arg in &mut clause.head.args {
                *arg = rewrite(arg, &plan);
            }
        }
        pass.fused = Some((rewritten, fused_machines));
    }
    pass
}

/// Does the term contain a transducer call?
fn has_transducer(term: &CSeq) -> bool {
    match term {
        CSeq::Const(_) | CSeq::Var(_) | CSeq::Indexed { .. } => false,
        CSeq::Concat(a, b) => has_transducer(a) || has_transducer(b),
        CSeq::Transducer { .. } => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::lint::Severity;
    use crate::compile::compile;
    use crate::parser::parse_program;
    use seqlog_sequence::{Alphabet, SeqStore};
    use seqlog_transducer::{exec, library, Fst};

    fn compiled(src: &str, a: &mut Alphabet) -> CompiledProgram {
        let mut st = SeqStore::new();
        let p = parse_program(src, a, &mut st).unwrap();
        compile(&p).unwrap()
    }

    fn codes(pass: &FusePass) -> Vec<&'static str> {
        pass.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn sl007_flags_non_functional_relation_calls() {
        let mut a = Alphabet::new();
        let x = a.intern_char('a');
        let y = a.intern_char('b');
        let mut rel = Fst::new("rel", 1);
        rel.add_arc(0, x, vec![x], 0);
        rel.add_arc(0, x, vec![y], 0);
        rel.set_final(0, Vec::new());
        rel.normalize();
        assert!(!rel.is_functional());
        let end = a.end_marker();
        let mut reg = TransducerRegistry::new();
        reg.register_fst("rel", rel, end);
        let cp = compiled("p(@rel(X)) :- r(X).", &mut a);
        let pass = fuse_program(&cp, &reg, &FuseLimits::default());
        assert_eq!(codes(&pass), ["SL007"]);
        let d = &pass.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.clause, Some(0));
        assert_eq!(d.pred.as_deref(), Some("rel"));
        assert!(d.message.contains("not functional"));
        assert!(pass.fused.is_none());
    }

    #[test]
    fn sl008_reports_dead_states_with_trim_counts() {
        let mut a = Alphabet::new();
        let x = a.intern_char('a');
        let mut m = Fst::new("m", 3);
        m.add_arc(0, x, vec![x], 0);
        // State 1 is unreachable; state 2 is reachable but cannot finish.
        m.add_arc(1, x, vec![x], 1);
        m.add_arc(0, x, vec![x], 2);
        m.set_final(0, Vec::new());
        m.normalize();
        let end = a.end_marker();
        let mut reg = TransducerRegistry::new();
        reg.register_fst("m", m, end);
        let cp = compiled("p(@m(X)) :- r(X).", &mut a);
        let pass = fuse_program(&cp, &reg, &FuseLimits::default());
        assert_eq!(codes(&pass), ["SL008"]);
        let d = &pass.diagnostics[0];
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.pred.as_deref(), Some("m"));
        assert!(d.message.contains("2 dead state(s)"), "{}", d.message);
        assert!(d.message.contains("3 -> 1 states"), "{}", d.message);
    }

    #[test]
    fn sl009_fuses_unary_chains_and_rewrites_heads() {
        let mut a = Alphabet::new();
        let s: Vec<_> = "ab".chars().map(|c| a.intern_char(c)).collect();
        let f = library::mapper(&mut a, "f", &[(s[0], s[1]), (s[1], s[0])]);
        let g = library::mapper(&mut a, "g", &[(s[0], s[0]), (s[1], s[0])]);
        let mut reg = TransducerRegistry::new();
        reg.register("f", f);
        reg.register("g", g);
        let cp = compiled("p(@f(@g(X))) :- r(X).", &mut a);
        let pass = fuse_program(&cp, &reg, &FuseLimits::default());
        assert_eq!(codes(&pass), ["SL009"]);
        let d = &pass.diagnostics[0];
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("(applied)"), "{}", d.message);
        assert_eq!(pass.decisions.len(), 1);
        let dec = &pass.decisions[0];
        assert!(dec.applied);
        assert_eq!(dec.clause, Some(0));
        assert_eq!(dec.chain, ["g", "f"]);
        assert_eq!(dec.fused_name, "fused$g$f");
        let (rewritten, machines) = pass.fused.expect("chain fused");
        assert_eq!(machines.len(), 1);
        assert_eq!(machines[0].0, "fused$g$f");
        match &rewritten.clauses[0].head.args[0] {
            CSeq::Transducer { name, args } => {
                assert_eq!(name, "fused$g$f");
                assert!(matches!(args.as_slice(), [CSeq::Var(_)]));
            }
            other => panic!("head not rewritten: {other:?}"),
        }
        // The fused machine computes g then f: a -> g a -> f b.
        let out = exec::run_to_vec(&machines[0].1, &[&[s[0], s[0]]]).unwrap();
        assert_eq!(out, vec![s[1], s[1]]);
    }

    #[test]
    fn sl009_declines_unsupported_chains_with_reason() {
        let mut a = Alphabet::new();
        let s: Vec<_> = "ab".chars().map(|c| a.intern_char(c)).collect();
        let f = library::mapper(&mut a, "f", &[(s[0], s[1]), (s[1], s[0])]);
        let sq = library::square(&mut a, &s);
        let mut reg = TransducerRegistry::new();
        reg.register("f", f);
        reg.register("sq", sq);
        let cp = compiled("p(@sq(@f(X))) :- r(X).", &mut a);
        let pass = fuse_program(&cp, &reg, &FuseLimits::default());
        assert_eq!(codes(&pass), ["SL009"]);
        let d = &pass.diagnostics[0];
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("declined"), "{}", d.message);
        assert!(!pass.decisions[0].applied);
        assert!(!pass.decisions[0].reason.is_empty());
        assert!(pass.fused.is_none());
    }

    #[test]
    fn registered_networks_fuse_at_registration_and_are_reported() {
        let mut a = Alphabet::new();
        let s: Vec<_> = "ab".chars().map(|c| a.intern_char(c)).collect();
        let f = library::mapper(&mut a, "f", &[(s[0], s[1]), (s[1], s[0])]);
        let g = library::mapper(&mut a, "g", &[(s[0], s[0]), (s[1], s[0])]);
        let net = seqlog_transducer::Network::chain("pipe", vec![f, g]);
        let mut reg = TransducerRegistry::new();
        reg.register_network(net);
        // The fused machine is callable under the network's name.
        let fused = reg.get("pipe").expect("network fused at registration");
        // f then g: a -> f b -> g a.
        let out = exec::run_to_vec(fused, &[&[s[0]]]).unwrap();
        assert_eq!(out, vec![s[0]]);
        // The pass reports the network decision even with no program chains.
        let cp = compiled("p(X) :- r(X).", &mut a);
        let pass = fuse_program(&cp, &reg, &FuseLimits::default());
        assert_eq!(pass.decisions.len(), 1);
        let dec = &pass.decisions[0];
        assert_eq!(dec.clause, None);
        assert!(dec.applied);
        assert_eq!(dec.fused_name, "pipe");
        assert_eq!(dec.chain, ["f", "g"]);
    }

    #[test]
    fn evaluation_extent_is_identical_with_fusion_on_and_off() {
        use crate::database::Database;
        use crate::eval::{evaluate, EvalConfig};
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let s: Vec<_> = "ab".chars().map(|c| a.intern_char(c)).collect();
        let f = library::mapper(&mut a, "f", &[(s[0], s[1]), (s[1], s[0])]);
        let g = library::mapper(&mut a, "g", &[(s[0], s[0]), (s[1], s[0])]);
        let mut reg = TransducerRegistry::new();
        reg.register("f", f);
        reg.register("g", g);
        let p = parse_program("p(@f(@g(X))) :- r(X).", &mut a, &mut st).unwrap();
        let mut db = Database::new();
        for w in ["a", "b", "ab", "ba", "abba"] {
            let id = st.intern(&w.chars().map(|c| a.intern_char(c)).collect::<Vec<_>>());
            db.add("r", vec![id]);
        }
        let extent = |model: &crate::eval::Model, st: &SeqStore| {
            crate::engine::render_tuples_with(model.facts.relation_named("p"), &a, st)
        };
        let mut st_on = st.clone();
        let on = evaluate(&p, &db, &mut st_on, &reg, &EvalConfig::default()).unwrap();
        let mut st_off = st.clone();
        let cfg = EvalConfig {
            danger_disable_fusion: true,
            ..EvalConfig::default()
        };
        let off = evaluate(&p, &db, &mut st_off, &reg, &cfg).unwrap();
        // Insertion order (not just set equality) must match: fusion is a
        // pure rewrite, so derivation order is preserved too.
        assert_eq!(extent(&on, &st_on), extent(&off, &st_off));
        let mut sorted = extent(&on, &st_on);
        sorted.sort();
        assert_eq!(sorted, [["b"], ["bb"], ["bbbb"]]);
    }
}
