//! The magic-set transformation: demand-driven (goal-directed) rewriting
//! of a compiled program, IR-to-IR.
//!
//! Given a goal `p` adorned by a query pattern ([`crate::analysis::adorn`]),
//! the transformation emits an ordinary [`CompiledProgram`] whose least
//! fixpoint agrees with the original program's on every tuple of `p`
//! matching the pattern, while deriving (ideally) far fewer facts:
//!
//! * one fresh **magic predicate** `magic[q:a]` per reached pair
//!   `(q, a)`, holding the bound-argument demands on `q`;
//! * a **guarded variant** of each clause of a reached pair — the original
//!   clause with the magic guard atom prepended, so it only fires for
//!   demanded bindings;
//! * a **magic rule** per demanded body atom, deriving its demand from
//!   the head's demand plus the SIP prefix of the body.
//!
//! # Soundness gate (the fallback rule)
//!
//! Sequence Datalog evaluates over the *extended active domain*
//! (Definition 2): indexed terms may range over windows of the domain,
//! and constructive clauses grow it mid-evaluation. A demand restriction
//! that shrinks the derived fact set can therefore shrink the domain and
//! lose answers — under-approximation is the bug class here. Two
//! conservative rules keep the rewrite an over-approximation of the
//! goal's true extent:
//!
//! * **Full fallback**: if any stratum in the goal's dependency cone is
//!   `domain_sensitive` (a clause reads the global domain directly), the
//!   whole program is kept unguarded — demand evaluation degenerates to
//!   the batch fixpoint, which is always correct. Domain-sensitive
//!   clauses observe the *global* domain, including growth contributed by
//!   clauses outside the goal's cone, so no per-stratum restriction is
//!   sound for them.
//! * **Constructive closure**: otherwise, every cone stratum flagged
//!   `constructive` — plus everything it reads, transitively — is kept
//!   unguarded (evaluated in full); only the remaining cone strata are
//!   magic-guarded. A constructive clause's outputs feed the domain that
//!   *other* clauses' indexed terms window over, so its inputs must not
//!   be demand-restricted.
//!
//! Clauses outside the goal's cone are dropped entirely (unless the full
//! fallback triggers): non-constructive, non-domain-sensitive clauses
//! only ever derive windows of sequences already interned by the base
//! facts and the surviving clauses, so dropping them cannot starve the
//! cone.

use crate::analysis::adorn::{adorn, bound_args, AdornedProgram, Adornment};
use crate::analysis::Schedule;
use crate::compile::{CAtom, CBase, CBody, CIdx, CSeq, CompiledClause, CompiledProgram, PredId};
use seqlog_sequence::SeqId;
use std::collections::HashMap;

/// The matcher's body-literal limit (a 128-bit solve mask); prepending a
/// guard to a body already at the limit would overflow it, so such
/// clauses fall back to full evaluation instead.
const BODY_LIMIT: usize = 128;

/// Harness mutants for the demand fuzz suite. Both default to `false`;
/// enabling either *deliberately breaks* the transformation so the
/// oracle tests can prove they would catch the corresponding bug class.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MagicOptions {
    /// Mutant: omit the magic guard from clause variants. The rewrite
    /// over-approximates (answers stay correct) but derives the full
    /// extent — the selectivity bound in the harness must catch it.
    pub danger_drop_magic_guard: bool,
    /// Mutant: skip the domain-sensitivity / constructive fallback gate.
    /// The rewrite may under-approximate (lose answers) on programs with
    /// domain-sensitive or constructive cone strata — the extent oracle
    /// must catch it.
    pub danger_skip_fallback: bool,
}

/// A magic-transformed program, ready for the ordinary stratified
/// evaluator, plus the metadata needed to seed and read it.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The transformed program. Its predicate table is a prefix-compatible
    /// extension of the source program's: original `PredId`s stay valid.
    pub program: CompiledProgram,
    /// The query goal predicate (original id).
    pub goal: PredId,
    /// The goal's adornment.
    pub pattern: Adornment,
    /// The goal's magic predicate: seed it with one fact holding the
    /// query's bound values (in bound-position order) before running.
    pub seed: PredId,
    /// Per original predicate: kept unguarded (evaluated in full) by the
    /// fallback gate.
    pub full: Vec<bool>,
    /// The whole program fell back (a domain-sensitive stratum in the
    /// goal's cone): the transformed program is the original program plus
    /// an inert seed predicate.
    pub full_fallback: bool,
    /// The adornment pass's output, for rendering and inspection.
    pub adorned: AdornedProgram,
}

/// Recompute a synthesized clause's safety flags over its actual head and
/// body. Variable slots inherited from the source clause that no longer
/// occur anywhere in the synthesized clause are vacuously guarded — their
/// slots are never read by the matcher or the head evaluator.
/// Record every variable occurrence of `t` into the slot-occurrence maps.
fn mark(t: &CSeq, occurs_seq: &mut [bool], occurs_idx: &mut [bool]) {
    let mut sv = Vec::new();
    let mut iv = Vec::new();
    t.seq_vars(&mut sv);
    t.idx_vars(&mut iv);
    for &v in &sv {
        occurs_seq[v as usize] = true;
    }
    for &v in &iv {
        occurs_idx[v as usize] = true;
    }
}

fn synth_clause(head: CAtom, body: Vec<CBody>, src: &CompiledClause) -> CompiledClause {
    let mut occurs_seq = vec![false; src.n_seq];
    let mut occurs_idx = vec![false; src.n_idx];
    let mut guarded_seq = vec![false; src.n_seq];
    let mut idx_in_atom = vec![false; src.n_idx];
    let mut constructive = false;
    for t in &head.args {
        mark(t, &mut occurs_seq, &mut occurs_idx);
        constructive |= matches!(t, CSeq::Concat(..) | CSeq::Transducer { .. });
    }
    for lit in &body {
        match lit {
            CBody::Atom(a) => {
                for t in &a.args {
                    mark(t, &mut occurs_seq, &mut occurs_idx);
                    if let CSeq::Var(v) = t {
                        guarded_seq[*v as usize] = true;
                    }
                    let mut iv = Vec::new();
                    t.idx_vars(&mut iv);
                    for &v in &iv {
                        idx_in_atom[v as usize] = true;
                    }
                }
            }
            CBody::Eq(l, r) | CBody::Neq(l, r) => {
                mark(l, &mut occurs_seq, &mut occurs_idx);
                mark(r, &mut occurs_seq, &mut occurs_idx);
            }
        }
    }
    // Compact the variable slots: a magic rule typically uses only a
    // subset of the source clause's variables (e.g. the head variable
    // `X` of `anc(X, Z) :- anc(X, Y), edge(Y, Z).` never appears in the
    // rule demanding `anc`'s second argument).  The matcher plans
    // bindings for every declared slot, so unused slots must not
    // survive — renumber head and body to the occurring subset.
    let mut seq_map = vec![0u16; src.n_seq];
    let mut idx_map = vec![0u16; src.n_idx];
    let mut seq_names = Vec::new();
    let mut idx_names = Vec::new();
    let mut guarded = Vec::new();
    for v in 0..src.n_seq {
        if occurs_seq[v] {
            seq_map[v] = seq_names.len() as u16;
            seq_names.push(src.seq_names[v].clone());
            guarded.push(guarded_seq[v]);
        }
    }
    let mut idx_unguarded = false;
    for v in 0..src.n_idx {
        if occurs_idx[v] {
            idx_map[v] = idx_names.len() as u16;
            idx_names.push(src.idx_names[v].clone());
            idx_unguarded |= !idx_in_atom[v];
        }
    }
    let mut head = head;
    let mut body = body;
    for t in &mut head.args {
        remap_seq(t, &seq_map, &idx_map);
    }
    for lit in &mut body {
        match lit {
            CBody::Atom(a) => {
                for t in &mut a.args {
                    remap_seq(t, &seq_map, &idx_map);
                }
            }
            CBody::Eq(l, r) | CBody::Neq(l, r) => {
                remap_seq(l, &seq_map, &idx_map);
                remap_seq(r, &seq_map, &idx_map);
            }
        }
    }
    let domain_sensitive = guarded.iter().any(|&g| !g) || idx_unguarded;
    CompiledClause {
        head,
        body,
        n_seq: seq_names.len(),
        n_idx: idx_names.len(),
        seq_names,
        idx_names,
        guarded_seq: guarded,
        constructive,
        domain_sensitive,
    }
}

/// The goal's dependency cone: predicates reachable from `goal` through
/// clause bodies (including the goal itself).
/// Renumber every variable slot in `t` through the compaction maps.
fn remap_seq(t: &mut CSeq, seq_map: &[u16], idx_map: &[u16]) {
    match t {
        CSeq::Const(_) => {}
        CSeq::Var(v) => *v = seq_map[*v as usize],
        CSeq::Indexed { base, lo, hi } => {
            if let CBase::Var(v) = base {
                *v = seq_map[*v as usize];
            }
            remap_idx(lo, idx_map);
            remap_idx(hi, idx_map);
        }
        CSeq::Concat(l, r) => {
            remap_seq(l, seq_map, idx_map);
            remap_seq(r, seq_map, idx_map);
        }
        CSeq::Transducer { args, .. } => {
            for a in args {
                remap_seq(a, seq_map, idx_map);
            }
        }
    }
}

fn remap_idx(t: &mut CIdx, idx_map: &[u16]) {
    match t {
        CIdx::Int(_) | CIdx::End => {}
        CIdx::Var(v) => *v = idx_map[*v as usize],
        CIdx::Add(l, r) | CIdx::Sub(l, r) => {
            remap_idx(l, idx_map);
            remap_idx(r, idx_map);
        }
    }
}

fn cone_of(program: &CompiledProgram, goal: PredId) -> Vec<bool> {
    let n = program.preds.len();
    let mut cone = vec![false; n];
    let mut stack = vec![goal];
    cone[goal.index()] = true;
    while let Some(p) = stack.pop() {
        for clause in &program.clauses {
            if clause.head.pred != p {
                continue;
            }
            for lit in &clause.body {
                if let CBody::Atom(a) = lit {
                    if !cone[a.pred.index()] {
                        cone[a.pred.index()] = true;
                        stack.push(a.pred);
                    }
                }
            }
        }
    }
    cone
}

/// Apply the magic-set transformation for `goal` queried with `pattern`.
pub fn magic_transform(
    program: &CompiledProgram,
    goal: PredId,
    pattern: &Adornment,
    opts: &MagicOptions,
) -> MagicProgram {
    let n = program.preds.len();
    let mut has_clause = vec![false; n];
    for clause in &program.clauses {
        has_clause[clause.head.pred.index()] = true;
    }
    let cone = cone_of(program, goal);
    let schedule = &program.schedule;

    let full_fallback = !opts.danger_skip_fallback
        && (0..n).any(|p| {
            cone[p] && schedule.strata[schedule.stratum_of(PredId(p as u32))].domain_sensitive
        });

    // F: predicates evaluated in full. Seeded by constructive cone strata
    // and by clauses too long to guard, then closed downward (stratum
    // mates, then body predicates of F-headed clauses).
    let mut full = vec![false; n];
    if full_fallback {
        full.copy_from_slice(&has_clause[..n]);
    } else if !opts.danger_skip_fallback {
        let mut stack = Vec::new();
        for p in 0..n {
            if cone[p]
                && has_clause[p]
                && schedule.strata[schedule.stratum_of(PredId(p as u32))].constructive
            {
                full[p] = true;
                stack.push(PredId(p as u32));
            }
        }
        for clause in &program.clauses {
            let h = clause.head.pred;
            if cone[h.index()] && clause.body.len() >= BODY_LIMIT && !full[h.index()] {
                full[h.index()] = true;
                stack.push(h);
            }
        }
        while let Some(p) = stack.pop() {
            for &q in &schedule.strata[schedule.stratum_of(p)].preds {
                if has_clause[q.index()] && !full[q.index()] {
                    full[q.index()] = true;
                    stack.push(q);
                }
            }
            for clause in &program.clauses {
                if clause.head.pred != p {
                    continue;
                }
                for lit in &clause.body {
                    if let CBody::Atom(a) = lit {
                        if has_clause[a.pred.index()] && !full[a.pred.index()] {
                            full[a.pred.index()] = true;
                            stack.push(a.pred);
                        }
                    }
                }
            }
        }
    }

    let transformable: Vec<bool> = (0..n)
        .map(|p| has_clause[p] && !full[p] && !full_fallback)
        .collect();
    let adorned = adorn(program, goal, pattern, &transformable);

    let mut preds = program.preds.clone();
    let mut magic_ids: HashMap<(PredId, Adornment), PredId> = HashMap::new();
    for (p, a) in &adorned.reached {
        let id = preds.intern(&format!("magic[{}:{a}]", program.preds.name(*p)));
        magic_ids.insert((*p, a.clone()), id);
    }
    let seed = magic_ids
        .get(&(goal, pattern.clone()))
        .copied()
        .unwrap_or_else(|| preds.intern(&format!("magic[{}:{pattern}]", program.preds.name(goal))));

    let mut clauses = Vec::new();
    // Unguarded originals first (source order), then guarded variants and
    // magic rules in adornment discovery order.
    for clause in &program.clauses {
        if full[clause.head.pred.index()] {
            clauses.push(clause.clone());
        }
    }
    for ac in &adorned.clauses {
        let src = &program.clauses[ac.clause as usize];
        let guard = CAtom {
            pred: magic_ids[&(src.head.pred, ac.adornment.clone())],
            args: bound_args(&src.head, &ac.adornment),
        };
        let mut body = Vec::with_capacity(src.body.len() + 1);
        if !opts.danger_drop_magic_guard {
            body.push(CBody::Atom(guard.clone()));
        }
        body.extend(src.body.iter().cloned());
        clauses.push(synth_clause(src.head.clone(), body, src));
        // Magic rules: one per demanded body atom, deriving its demand
        // from the head's demand plus the SIP prefix before the atom.
        let mut prefix: Vec<CBody> = vec![CBody::Atom(guard)];
        for &li in &ac.sip {
            let lit = &src.body[li as usize];
            if let (CBody::Atom(a), Some(ba)) = (lit, &ac.body_adornments[li as usize]) {
                if let Some(&mid) = magic_ids.get(&(a.pred, ba.clone())) {
                    let rule_head = CAtom {
                        pred: mid,
                        args: bound_args(a, ba),
                    };
                    clauses.push(synth_clause(rule_head, prefix.clone(), src));
                }
            }
            prefix.push(lit.clone());
        }
    }

    let schedule = Schedule::build(&clauses, preds.len());
    MagicProgram {
        program: CompiledProgram {
            clauses,
            preds,
            schedule,
        },
        goal,
        pattern: pattern.clone(),
        seed,
        full,
        full_fallback,
        adorned,
    }
}

impl MagicProgram {
    /// Names of the predicates kept in full (fallback) evaluation, in id
    /// order — what `analyze --check` pins with `% expect-fallback:`.
    pub fn fallback_names(&self) -> Vec<&str> {
        let src_preds = &self.program.preds;
        self.full
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(p, _)| src_preds.name(PredId(p as u32)))
            .collect()
    }

    /// Render the transformed program, one clause per line, using `seq`
    /// to print interned sequence constants.
    pub fn render(&self, seq: &dyn Fn(SeqId) -> String) -> String {
        let mut out = String::new();
        for clause in &self.program.clauses {
            out.push_str(&render_clause(&self.program, clause, seq));
            out.push('\n');
        }
        out
    }
}

/// Render one compiled clause back to concrete syntax, resolving
/// predicate names against `program.preds` and sequence constants through
/// `seq`. Used by the golden transformation tests and `analyze --adorn`.
pub fn render_clause(
    program: &CompiledProgram,
    clause: &CompiledClause,
    seq: &dyn Fn(SeqId) -> String,
) -> String {
    fn idx(t: &CIdx, names: &[String]) -> String {
        match t {
            CIdx::Int(i) => i.to_string(),
            CIdx::Var(v) => names[*v as usize].clone(),
            CIdx::End => "end".to_string(),
            CIdx::Add(a, b) => format!("{} + {}", idx(a, names), idx(b, names)),
            CIdx::Sub(a, b) => format!("{} - {}", idx(a, names), idx(b, names)),
        }
    }
    fn term(t: &CSeq, c: &CompiledClause, seq: &dyn Fn(SeqId) -> String) -> String {
        match t {
            CSeq::Const(id) => format!("{:?}", seq(*id)),
            CSeq::Var(v) => c.seq_names[*v as usize].clone(),
            CSeq::Indexed { base, lo, hi } => {
                let b = match base {
                    CBase::Var(v) => c.seq_names[*v as usize].clone(),
                    CBase::Const(id) => format!("{:?}", seq(*id)),
                };
                format!("{b}[{}:{}]", idx(lo, &c.idx_names), idx(hi, &c.idx_names))
            }
            CSeq::Concat(a, b) => format!("{} ++ {}", term(a, c, seq), term(b, c, seq)),
            CSeq::Transducer { name, args } => {
                let args: Vec<_> = args.iter().map(|a| term(a, c, seq)).collect();
                format!("@{name}({})", args.join(", "))
            }
        }
    }
    fn atom(
        a: &CAtom,
        p: &CompiledProgram,
        c: &CompiledClause,
        seq: &dyn Fn(SeqId) -> String,
    ) -> String {
        let args: Vec<_> = a.args.iter().map(|t| term(t, c, seq)).collect();
        format!("{}({})", p.preds.name(a.pred), args.join(", "))
    }
    let head = atom(&clause.head, program, clause, seq);
    if clause.body.is_empty() {
        return format!("{head}.");
    }
    let body: Vec<_> = clause
        .body
        .iter()
        .map(|lit| match lit {
            CBody::Atom(a) => atom(a, program, clause, seq),
            CBody::Eq(l, r) => format!("{} = {}", term(l, clause, seq), term(r, clause, seq)),
            CBody::Neq(l, r) => format!("{} != {}", term(l, clause, seq), term(r, clause, seq)),
        })
        .collect();
    format!("{head} :- {}.", body.join(", "))
}
