//! SCC-stratified evaluation schedule.
//!
//! Compilation condenses the predicate dependency graph (Definition 9)
//! into strongly connected components and lays the components out in
//! topological order (callees first). The evaluator walks this
//! [`Schedule`] stratum by stratum, running semi-naive rounds only over
//! the current stratum's clauses and skipping strata whose inputs have
//! not changed — see [`crate::eval`] for the scheduling guarantee.

use super::graph::{Condensation, GraphBuilder, PredGraph};
use crate::compile::{CBody, CompiledClause, PredId};

/// Build the predicate dependency graph of a compiled clause list over
/// `n_preds` dense nodes. Every interned predicate is a node, so
/// body-only and (via an extended table) database-only predicates appear
/// as isolated sources.
pub(crate) fn clause_graph(clauses: &[CompiledClause], n_preds: usize) -> PredGraph {
    let mut b = GraphBuilder::new(n_preds);
    for clause in clauses {
        for lit in &clause.body {
            if let CBody::Atom(a) = lit {
                b.edge(clause.head.pred.0, a.pred.0, clause.constructive);
            }
        }
    }
    b.finish()
}

/// One stratum of the schedule: a strongly connected component of the
/// dependency graph together with the clauses whose heads define it.
#[derive(Clone, Debug, Default)]
pub struct Stratum {
    /// Indices into [`crate::compile::CompiledProgram::clauses`], in
    /// source order (the evaluator's commit order depends on it).
    pub clauses: Vec<u32>,
    /// Member predicates of the component, in ascending id order.
    pub preds: Vec<PredId>,
    /// True when some clause of the stratum is domain-sensitive, i.e. must
    /// be re-run when the extended active domain grows.
    pub domain_sensitive: bool,
    /// True when some clause of the stratum reads a predicate of the same
    /// component — the stratum feeds itself and needs an inner fixpoint.
    pub recursive: bool,
    /// True when some clause of the stratum is *constructive* (its head can
    /// create sequences not present in the body bindings: concatenations,
    /// transducer calls — the distinction Theorem 3 builds on). The
    /// evaluator uses this as a commit hint: a non-constructive stratum's
    /// rounds evaluate heads entirely against the epoch-frozen store, so
    /// the merge phase can skip the intern-merge scan outright.
    pub constructive: bool,
}

/// The stratified evaluation schedule of a compiled program.
///
/// `strata[i]` is the component with Tarjan id `i`; because component ids
/// come out in reverse topological order, ascending index order is a valid
/// topological order (a stratum's body predicates always belong to strata
/// `<=` itself, with equality exactly for recursive strata). Predicates
/// that head no clause (database-only inputs) occupy clause-less strata.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// Strata in topological (ascending component id) order.
    pub strata: Vec<Stratum>,
    /// Stratum index per predicate id.
    pub stratum_of: Vec<u32>,
}

impl Schedule {
    /// Build the schedule for a compiled clause list (called once by
    /// [`crate::compile::compile`]).
    pub fn build(clauses: &[CompiledClause], n_preds: usize) -> Self {
        let cond = clause_graph(clauses, n_preds).condense();
        Self::from_condensation(clauses, n_preds, &cond)
    }

    /// Build the schedule from an already-computed condensation (shared
    /// with [`super::ProgramReport`] so the graph is condensed once).
    pub fn from_condensation(
        clauses: &[CompiledClause],
        n_preds: usize,
        cond: &Condensation,
    ) -> Self {
        let mut strata = vec![Stratum::default(); cond.n_comps];
        for p in 0..n_preds {
            strata[cond.comp[p] as usize].preds.push(PredId(p as u32));
        }
        for (ci, clause) in clauses.iter().enumerate() {
            let comp = cond.comp[clause.head.pred.index()] as usize;
            let s = &mut strata[comp];
            s.clauses.push(ci as u32);
            s.domain_sensitive |= clause.domain_sensitive;
            s.constructive |= clause.constructive;
            for lit in &clause.body {
                if let CBody::Atom(a) = lit {
                    s.recursive |= cond.comp[a.pred.index()] as usize == comp;
                }
            }
        }
        Self {
            strata,
            stratum_of: cond.comp.clone(),
        }
    }

    /// The stratum defining a predicate.
    pub fn stratum_of(&self, pred: PredId) -> usize {
        self.stratum_of[pred.index()] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use seqlog_sequence::{Alphabet, SeqStore};

    fn schedule(src: &str) -> (crate::compile::CompiledProgram, Schedule) {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let p = parse_program(src, &mut a, &mut st).unwrap();
        let cp = crate::compile::compile(&p).unwrap();
        let s = Schedule::build(&cp.clauses, cp.preds.len());
        (cp, s)
    }

    #[test]
    fn chain_program_stratifies_in_topological_order() {
        let (cp, s) = schedule("a(X) :- r(X).\nb(X) :- a(X).\nc(X) :- b(X).");
        let id = |n: &str| cp.preds.lookup(n).unwrap();
        assert!(s.stratum_of(id("r")) < s.stratum_of(id("a")));
        assert!(s.stratum_of(id("a")) < s.stratum_of(id("b")));
        assert!(s.stratum_of(id("b")) < s.stratum_of(id("c")));
        // r heads no clause: its stratum is clause-less.
        assert!(s.strata[s.stratum_of(id("r"))].clauses.is_empty());
        for st in &s.strata {
            assert!(!st.recursive);
        }
    }

    #[test]
    fn mutual_recursion_collapses_into_one_recursive_stratum() {
        let (cp, s) = schedule("p(X) :- q(X).\nq(X) :- p(X).\np(X) :- r(X).");
        let id = |n: &str| cp.preds.lookup(n).unwrap();
        assert_eq!(s.stratum_of(id("p")), s.stratum_of(id("q")));
        let st = &s.strata[s.stratum_of(id("p"))];
        assert!(st.recursive);
        assert_eq!(st.clauses, vec![0, 1, 2]);
        assert_eq!(st.preds.len(), 2);
    }

    #[test]
    fn constructiveness_is_lifted_to_the_stratum() {
        let (cp, s) = schedule("a(X) :- r(X).\ngrow(X ++ X) :- a(X).");
        let id = |n: &str| cp.preds.lookup(n).unwrap();
        assert!(!s.strata[s.stratum_of(id("a"))].constructive);
        assert!(s.strata[s.stratum_of(id("grow"))].constructive);
    }

    #[test]
    fn domain_sensitivity_is_lifted_to_the_stratum() {
        let (cp, s) = schedule("a(X) :- r(X).\nsuffix(X[N:end]) :- a(X).");
        let id = |n: &str| cp.preds.lookup(n).unwrap();
        assert!(!s.strata[s.stratum_of(id("a"))].domain_sensitive);
        assert!(s.strata[s.stratum_of(id("suffix"))].domain_sensitive);
    }
}
