//! Compile-time program analysis over the compiled IR.
//!
//! This subsystem turns the paper's static story (Sections 5–8) into
//! machine-checkable structure: the predicate dependency graph
//! (Definition 9) is condensed into strongly connected components
//! ([`graph`]), the components are laid out as a topological evaluation
//! [`Schedule`] that [`crate::eval`] follows stratum by stratum, and a
//! lint engine ([`lint`]) emits stable `SL001`..`SL006` diagnostics
//! covering strong safety (Theorem 8), range restriction, dead code, and
//! arity hygiene. Everything operates on [`CompiledProgram`] / `PredId` —
//! no predicate-name strings on the analysis path; the AST-level
//! [`crate::safety`] module is a thin facade over this one.
//!
//! Entry points: [`ProgramReport::analyze`] (database predicates inferred
//! as the predicates heading no clause) and
//! [`ProgramReport::analyze_with_edb`] (explicit closed-world set, used by
//! sessions which know what has actually been asserted).

pub mod adorn;
pub mod fuse;
pub mod graph;
pub mod lint;
pub mod magic;
pub mod schedule;

pub use adorn::{AdornedClause, AdornedProgram, Adornment, Bind, Binding};
pub use fuse::{fuse_program, FuseLimits, FusePass, FusionDecision};
pub use graph::{Condensation, DepEdge, GraphBuilder, PredGraph};
pub use lint::{Diagnostic, LintCode, Severity};
pub use magic::{magic_transform, render_clause, MagicProgram};
pub use schedule::{Schedule, Stratum};

use crate::compile::{CBody, CompiledProgram, PredId};
use std::fmt::Write as _;

/// Static facts about one compiled clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClauseFacts {
    /// The head contains a constructive (`++`) or transducer term
    /// (Definition 8).
    pub constructive: bool,
    /// Evaluation may consult the extended active domain beyond matched
    /// facts, so the clause re-runs when the domain grows.
    pub domain_sensitive: bool,
    /// The clause has no variables at all.
    pub ground: bool,
    /// Every sequence variable is guarded (Appendix B).
    pub guarded: bool,
    /// Some body atom reads a predicate in the head's strongly connected
    /// component (directly or mutually recursive).
    pub self_recursive: bool,
    /// The stratum (component id) owning the head predicate.
    pub stratum: u32,
}

/// The complete static-analysis report for a compiled program.
#[derive(Clone, Debug)]
pub struct ProgramReport {
    /// Per-clause facts, indexed like
    /// [`CompiledProgram::clauses`](crate::compile::CompiledProgram::clauses).
    pub clause_facts: Vec<ClauseFacts>,
    /// Lint diagnostics, sorted by (code, clause, predicate).
    pub diagnostics: Vec<Diagnostic>,
    /// The predicate dependency graph (Definition 9) over `PredId` nodes.
    pub graph: PredGraph,
    /// Its SCC condensation with topological stratum levels.
    pub condensation: Condensation,
    /// The stratified evaluation schedule derived from the condensation.
    pub schedule: Schedule,
    /// True when no constructive edge lies on a cycle (Theorem 8) — i.e.
    /// no `SL001` diagnostic fired.
    pub strongly_safe: bool,
    /// Transducer-fusion decisions (empty until a machine-level pass is
    /// attached via [`ProgramReport::attach_fusion`], since fusion needs a
    /// registry the pure program analysis does not have).
    pub fusion: Vec<FusionDecision>,
    pred_names: Vec<String>,
}

impl ProgramReport {
    /// Analyze a compiled program, inferring the database predicates as
    /// those that head no clause (the conventional EDB reading).
    pub fn analyze(program: &CompiledProgram) -> Self {
        let mut edb = vec![true; program.preds.len()];
        for clause in &program.clauses {
            edb[clause.head.pred.index()] = false;
        }
        Self::analyze_impl(program, edb)
    }

    /// Analyze with an explicit set of database (assertable) predicates —
    /// the closed-world variant used by [`crate::session::EngineSession`],
    /// where the EDB is exactly what has been asserted.
    pub fn analyze_with_edb(program: &CompiledProgram, edb: &[PredId]) -> Self {
        let mut flags = vec![false; program.preds.len()];
        for p in edb {
            if p.index() < flags.len() {
                flags[p.index()] = true;
            }
        }
        Self::analyze_impl(program, flags)
    }

    fn analyze_impl(program: &CompiledProgram, edb: Vec<bool>) -> Self {
        let n = program.preds.len();
        let mut heads = vec![false; n];
        for clause in &program.clauses {
            heads[clause.head.pred.index()] = true;
        }
        let graph = schedule::clause_graph(&program.clauses, n);
        let condensation = graph.condense();
        let schedule = Schedule::from_condensation(&program.clauses, n, &condensation);
        let mut diagnostics = lint::run_lints(program, &graph, &condensation, &edb, &heads);
        diagnostics.sort_by(|a, b| {
            (a.code, a.clause, &a.pred, &a.message).cmp(&(b.code, b.clause, &b.pred, &b.message))
        });
        let strongly_safe = !diagnostics
            .iter()
            .any(|d| d.code == LintCode::ConstructiveCycle);

        let clause_facts = program
            .clauses
            .iter()
            .map(|clause| {
                let comp = condensation.comp[clause.head.pred.index()];
                let self_recursive = clause.body.iter().any(|lit| match lit {
                    CBody::Atom(a) => condensation.comp[a.pred.index()] == comp,
                    CBody::Eq(..) | CBody::Neq(..) => false,
                });
                ClauseFacts {
                    constructive: clause.constructive,
                    domain_sensitive: clause.domain_sensitive,
                    ground: clause.n_seq == 0 && clause.n_idx == 0,
                    guarded: clause.is_guarded(),
                    self_recursive,
                    stratum: comp,
                }
            })
            .collect();

        Self {
            clause_facts,
            diagnostics,
            graph,
            condensation,
            schedule,
            strongly_safe,
            fusion: Vec::new(),
            pred_names: program.preds.iter().map(|(_, n)| n.to_string()).collect(),
        }
    }

    /// Merge a machine-level [`fuse::FusePass`] into the report: its
    /// `SL007`–`SL009` diagnostics join (and re-sort) the program-level
    /// ones, and its fusion decisions become [`ProgramReport::fusion`].
    pub fn attach_fusion(&mut self, pass: &fuse::FusePass) {
        self.diagnostics.extend(pass.diagnostics.iter().cloned());
        self.diagnostics.sort_by(|a, b| {
            (a.code, a.clause, &a.pred, &a.message).cmp(&(b.code, b.clause, &b.pred, &b.message))
        });
        self.fusion = pass.decisions.clone();
    }

    /// True when some diagnostic has [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The diagnostics carrying a given code.
    pub fn with_code(&self, code: LintCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Render the report for human consumption: the stratum layout in
    /// topological order, then each diagnostic on its own line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} strata over {} predicates ({})",
            self.schedule.strata.len(),
            self.pred_names.len(),
            if self.strongly_safe {
                "strongly safe"
            } else {
                "NOT strongly safe"
            }
        );
        for (si, stratum) in self.schedule.strata.iter().enumerate() {
            let preds = stratum
                .preds
                .iter()
                .map(|p| self.pred_names[p.index()].as_str())
                .collect::<Vec<_>>()
                .join(", ");
            let mut tags = Vec::new();
            if stratum.clauses.is_empty() {
                tags.push("source");
            }
            if stratum.recursive {
                tags.push("recursive");
            }
            if stratum.domain_sensitive {
                tags.push("domain-sensitive");
            }
            let tags = if tags.is_empty() {
                String::new()
            } else {
                format!(" [{}]", tags.join(", "))
            };
            let _ = writeln!(
                out,
                "  stratum {si}: {preds} ({} clause{}){tags}",
                stratum.clauses.len(),
                if stratum.clauses.len() == 1 { "" } else { "s" }
            );
        }
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        for f in &self.fusion {
            let site = match f.clause {
                Some(ci) => format!("clause {ci}"),
                None => "network".to_string(),
            };
            if f.applied {
                let _ = writeln!(
                    out,
                    "fusion ({site}): {} -> `@{}` ({} st / {} tr -> {} st / {} tr)",
                    f.chain_display(),
                    f.fused_name,
                    f.chain_states,
                    f.chain_transitions,
                    f.fused_states,
                    f.fused_transitions,
                );
            } else {
                let _ = writeln!(
                    out,
                    "fusion ({site}): {} declined: {}",
                    f.chain_display(),
                    f.reason
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse_program;
    use seqlog_sequence::{Alphabet, SeqStore};

    fn compiled(src: &str) -> CompiledProgram {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let p = parse_program(src, &mut a, &mut st).unwrap();
        compile(&p).unwrap()
    }

    fn codes(report: &ProgramReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn sl001_constructive_cycle_is_an_error() {
        let cp = compiled("p(X ++ X) :- p(X).");
        let r = ProgramReport::analyze(&cp);
        let sl1: Vec<_> = r.with_code(LintCode::ConstructiveCycle).collect();
        assert_eq!(sl1.len(), 1);
        assert_eq!(sl1[0].severity, Severity::Error);
        assert!(!r.strongly_safe);
        assert!(r.has_errors());
        // The indirect cycle of Example 8.1 (P3) is also caught: only the
        // constructive edge q -> p is reported, not the plain edge p -> q.
        let cp = compiled("p(X) :- q(X).\nq(X ++ X) :- p(X).");
        let r = ProgramReport::analyze(&cp);
        let sl1: Vec<_> = r.with_code(LintCode::ConstructiveCycle).collect();
        assert_eq!(sl1.len(), 1);
        assert_eq!(sl1[0].pred.as_deref(), Some("q"));
    }

    #[test]
    fn sl002_unbound_head_variable_flags_seq_but_not_idx() {
        let cp = compiled("p(X, Y) :- q(X).");
        let r = ProgramReport::analyze(&cp);
        assert_eq!(codes(&r), vec!["SL002"]);
        assert_eq!(r.diagnostics[0].clause, Some(0));
        assert!(r.diagnostics[0].message.contains("`Y`"));
        // A free head *index* variable is the structural-recursion idiom
        // (Example 1.1): enumerated over a bounded position range, not the
        // domain — no lint.
        let cp = compiled("suffix(X[N:end]) :- r(X).");
        let r = ProgramReport::analyze(&cp);
        assert!(codes(&r).is_empty());
        // A body occurrence in an equality counts as bound.
        let cp = compiled("p(X, Y) :- q(X), Y = X.");
        let r = ProgramReport::analyze(&cp);
        assert!(codes(&r).is_empty());
    }

    #[test]
    fn sl003_dead_clause_via_provably_empty_body_pred() {
        // p has only a self-recursive definition and is not a database
        // predicate, so p is provably empty and both clauses are dead.
        let cp = compiled("p(X) :- p(X).\nq(X) :- p(X).");
        let r = ProgramReport::analyze(&cp);
        assert_eq!(codes(&r), vec!["SL003", "SL003"]);
        assert_eq!(r.diagnostics[0].clause, Some(0));
        assert_eq!(r.diagnostics[1].clause, Some(1));
        // Declaring p as a database predicate revives both clauses.
        let p = cp.preds.lookup("p").unwrap();
        let r = ProgramReport::analyze_with_edb(&cp, &[p]);
        assert!(codes(&r).is_empty());
    }

    #[test]
    fn sl004_undefined_body_predicate_under_closed_world() {
        let cp = compiled("p(X) :- q(X).");
        // Open reading: q is inferred as a database predicate — clean.
        let r = ProgramReport::analyze(&cp);
        assert!(codes(&r).is_empty());
        // Closed world with an empty EDB: q is undefined.
        let r = ProgramReport::analyze_with_edb(&cp, &[]);
        assert_eq!(codes(&r), vec!["SL004"]);
        assert_eq!(r.diagnostics[0].pred.as_deref(), Some("q"));
        assert_eq!(r.diagnostics[0].clause, Some(0));
    }

    #[test]
    fn sl005_duplicate_and_subsumed_clauses() {
        let cp = compiled("p(X) :- q(X).\np(X) :- q(X).");
        let r = ProgramReport::analyze(&cp);
        assert_eq!(codes(&r), vec!["SL005"]);
        assert_eq!(r.diagnostics[0].clause, Some(1));
        assert!(r.diagnostics[0].message.contains("duplicate of clause 0"));
        // Subsumption: the second clause adds a conjunct to an
        // identical-headed body, so it derives nothing new.
        let cp = compiled("p(X) :- q(X).\np(X) :- q(X), r(X).");
        let r = ProgramReport::analyze(&cp);
        assert_eq!(codes(&r), vec!["SL005"]);
        assert!(r.diagnostics[0].message.contains("subsumed by clause 0"));
        // Different heads never subsume.
        let cp = compiled("p(X) :- q(X).\ns(X) :- q(X), r(X).");
        let r = ProgramReport::analyze(&cp);
        assert!(codes(&r).is_empty());
    }

    #[test]
    fn sl006_inconsistent_arity() {
        let cp = compiled("p(X) :- q(X).\nr(X) :- q(X, X).");
        let r = ProgramReport::analyze(&cp);
        assert_eq!(codes(&r), vec!["SL006"]);
        assert_eq!(r.diagnostics[0].pred.as_deref(), Some("q"));
        assert!(r.diagnostics[0].message.contains("1, 2"));
        assert_eq!(r.diagnostics[0].clause, None);
    }

    #[test]
    fn clause_facts_cover_the_paper_examples() {
        // Example 5.1: r is EDB, double is non-recursive constructive,
        // quadruple reads double.
        let cp = compiled("double(X ++ X) :- r(X).\nquadruple(Y ++ Y) :- double(Y).");
        let r = ProgramReport::analyze(&cp);
        assert!(r.strongly_safe);
        assert!(r.clause_facts[0].constructive);
        assert!(r.clause_facts[0].guarded);
        assert!(!r.clause_facts[0].self_recursive);
        assert!(!r.clause_facts[0].ground);
        assert!(r.clause_facts[0].stratum < r.clause_facts[1].stratum);
        // A ground clause and a self-recursive clause.
        let cp = compiled("p(\"a\").\nt(X) :- t(X), r(X).");
        let r = ProgramReport::analyze(&cp);
        assert!(r.clause_facts[0].ground);
        assert!(!r.clause_facts[0].self_recursive);
        assert!(r.clause_facts[1].self_recursive);
    }

    #[test]
    fn render_is_stable_and_lists_strata_topologically() {
        let cp = compiled("a(X) :- r(X).\nb(X ++ X) :- a(X).");
        let r = ProgramReport::analyze(&cp);
        let text = r.render();
        assert!(text.contains("strongly safe"));
        let ra = text.find("stratum 0: r").expect("r is the source stratum");
        let aa = text.find(": a ").expect("a listed");
        let bb = text.find(": b ").expect("b listed");
        assert!(ra < aa && aa < bb);
    }
}
