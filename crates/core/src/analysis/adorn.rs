//! Binding-pattern (adornment) analysis for demand-driven evaluation.
//!
//! Given a query goal `p` with some argument positions bound to concrete
//! values, this pass propagates *bound/free* annotations from the goal
//! through clause bodies: each clause of an adorned predicate is walked in
//! a **sideways information passing** (SIP) order — a static greedy
//! mirror of the runtime join planner's most-selective-first ordering —
//! and every body atom is adorned with the binding pattern it is reached
//! with. The result drives the magic-set transformation
//! ([`crate::analysis::magic`]).
//!
//! Binding annotations here are a *static under-approximation used for
//! routing demand*, not a soundness condition: the magic rules emitted
//! from a SIP prefix are ordinary clauses evaluated under the full
//! fixpoint semantics, so an imprecise adornment costs selectivity, never
//! answers.

use crate::compile::{CAtom, CBody, CSeq, CompiledClause, CompiledProgram, PredId};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// One argument position's binding status in an [`Adornment`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Binding {
    /// The position carries a concrete value at query time.
    Bound,
    /// The position is unrestricted.
    Free,
}

/// A per-argument binding pattern, conventionally written as a string of
/// `b`/`f` letters (`"bf"` = first argument bound, second free).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Adornment(pub Vec<Binding>);

impl Adornment {
    /// The all-free adornment of the given arity.
    pub fn all_free(arity: usize) -> Self {
        Adornment(vec![Binding::Free; arity])
    }

    /// Build from a bound-mask (`true` = bound).
    pub fn from_mask(mask: &[bool]) -> Self {
        Adornment(
            mask.iter()
                .map(|&b| if b { Binding::Bound } else { Binding::Free })
                .collect(),
        )
    }

    /// Parse a `b`/`f` letter string (commas and spaces ignored), e.g.
    /// `"bf"` or `"b,f"`. Returns `None` on any other character.
    pub fn parse(s: &str) -> Option<Self> {
        let mut out = Vec::new();
        for c in s.chars() {
            match c {
                'b' => out.push(Binding::Bound),
                'f' => out.push(Binding::Free),
                ',' | ' ' => {}
                _ => return None,
            }
        }
        Some(Adornment(out))
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Indices of the bound positions, in order.
    pub fn bound_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, b)| **b == Binding::Bound)
            .map(|(i, _)| i)
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|b| **b == Binding::Bound).count()
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            f.write_str(match b {
                Binding::Bound => "b",
                Binding::Free => "f",
            })?;
        }
        Ok(())
    }
}

/// Per-argument query binding for the bound-argument query API
/// ([`crate::session::EngineSession::query_bound`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bind<'a> {
    /// This argument must equal the given sequence value.
    Bound(&'a str),
    /// This argument is unrestricted.
    Free,
}

impl Bind<'_> {
    /// The adornment of a query pattern.
    pub fn adornment(pattern: &[Bind<'_>]) -> Adornment {
        Adornment(
            pattern
                .iter()
                .map(|b| match b {
                    Bind::Bound(_) => Binding::Bound,
                    Bind::Free => Binding::Free,
                })
                .collect(),
        )
    }
}

/// One clause of an adorned predicate, with its SIP order and the
/// adornment each body atom is reached with.
#[derive(Clone, Debug)]
pub struct AdornedClause {
    /// Index into [`CompiledProgram::clauses`].
    pub clause: u32,
    /// The head predicate's adornment this variant was produced for.
    pub adornment: Adornment,
    /// Body literal indices in sideways-information-passing order.
    pub sip: Vec<u32>,
    /// Adornment of each body literal *by original body index*; `None`
    /// for (in)equality literals.
    pub body_adornments: Vec<Option<Adornment>>,
}

/// The result of the adornment pass: every `(predicate, adornment)` pair
/// demand can reach from the goal, and one [`AdornedClause`] per clause
/// of each reached pair.
#[derive(Clone, Debug)]
pub struct AdornedProgram {
    /// The query goal predicate.
    pub goal: PredId,
    /// The goal's adornment (from the query pattern).
    pub pattern: Adornment,
    /// Reached `(pred, adornment)` pairs in discovery order; the goal
    /// pair is first when the goal itself is transformable.
    pub reached: Vec<(PredId, Adornment)>,
    /// Adorned clause variants, grouped by reached pair in `reached`
    /// order, source clause order within a pair.
    pub clauses: Vec<AdornedClause>,
}

/// True when every variable of `term` is bound in the given environments.
fn term_bound(term: &CSeq, seq_b: &[bool], idx_b: &[bool]) -> bool {
    let mut sv = Vec::new();
    let mut iv = Vec::new();
    term.seq_vars(&mut sv);
    term.idx_vars(&mut iv);
    sv.iter().all(|&v| seq_b[v as usize]) && iv.iter().all(|&v| idx_b[v as usize])
}

/// Mark every variable of `term` bound.
fn bind_term(term: &CSeq, seq_b: &mut [bool], idx_b: &mut [bool]) {
    let mut sv = Vec::new();
    let mut iv = Vec::new();
    term.seq_vars(&mut sv);
    term.idx_vars(&mut iv);
    for v in sv {
        seq_b[v as usize] = true;
    }
    for v in iv {
        idx_b[v as usize] = true;
    }
}

/// Compute the static greedy SIP order for one clause under a head
/// adornment, recording each body atom's adornment at pick time.
///
/// Priorities mirror the runtime matcher's dynamic phases: ground
/// (in)equalities first, then one-sided equalities (which bind their free
/// side), then atoms most-bound-arguments-first (source order breaking
/// ties), then residual (in)equalities.
fn sip_order(clause: &CompiledClause, adornment: &Adornment) -> (Vec<u32>, Vec<Option<Adornment>>) {
    let mut seq_b = vec![false; clause.n_seq];
    let mut idx_b = vec![false; clause.n_idx];
    // Bound head positions seed bindings, but only through plain
    // variable head arguments: a composite head term at a bound position
    // constrains the tuple without determining its variables.
    for pos in adornment.bound_positions() {
        if let Some(CSeq::Var(v)) = clause.head.args.get(pos) {
            seq_b[*v as usize] = true;
        }
    }
    let mut remaining: Vec<usize> = (0..clause.body.len()).collect();
    let mut sip = Vec::with_capacity(clause.body.len());
    let mut body_adornments: Vec<Option<Adornment>> = vec![None; clause.body.len()];
    while !remaining.is_empty() {
        let mut best: Option<(u32, usize, usize)> = None; // (priority, unbound, index)
        for &li in &remaining {
            let rank = match &clause.body[li] {
                CBody::Eq(l, r) => {
                    let lb = term_bound(l, &seq_b, &idx_b);
                    let rb = term_bound(r, &seq_b, &idx_b);
                    if lb && rb {
                        (0, 0, li)
                    } else if lb || rb {
                        (1, 0, li)
                    } else {
                        (3, 0, li)
                    }
                }
                CBody::Neq(l, r) => {
                    if term_bound(l, &seq_b, &idx_b) && term_bound(r, &seq_b, &idx_b) {
                        (0, 0, li)
                    } else {
                        (3, 0, li)
                    }
                }
                CBody::Atom(a) => {
                    let unbound = a
                        .args
                        .iter()
                        .filter(|t| !term_bound(t, &seq_b, &idx_b))
                        .count();
                    (2, unbound, li)
                }
            };
            if best.is_none() || rank < best.unwrap() {
                best = Some(rank);
            }
        }
        let (_, _, li) = best.unwrap();
        if let CBody::Atom(a) = &clause.body[li] {
            body_adornments[li] = Some(Adornment(
                a.args
                    .iter()
                    .map(|t| {
                        if term_bound(t, &seq_b, &idx_b) {
                            Binding::Bound
                        } else {
                            Binding::Free
                        }
                    })
                    .collect(),
            ));
        }
        match &clause.body[li] {
            CBody::Atom(a) => {
                for t in &a.args {
                    bind_term(t, &mut seq_b, &mut idx_b);
                }
            }
            CBody::Eq(l, r) | CBody::Neq(l, r) => {
                bind_term(l, &mut seq_b, &mut idx_b);
                bind_term(r, &mut seq_b, &mut idx_b);
            }
        }
        sip.push(li as u32);
        remaining.retain(|&x| x != li);
    }
    (sip, body_adornments)
}

/// Run the adornment pass from `goal` queried with `pattern`.
///
/// `transformable[p]` gates which predicates participate: demand only
/// propagates *into* and *through* predicates marked transformable (the
/// magic-set caller clears the flag for predicates that fall back to
/// full evaluation and for predicates heading no clause). A
/// non-transformable goal yields an empty adorned program.
pub fn adorn(
    program: &CompiledProgram,
    goal: PredId,
    pattern: &Adornment,
    transformable: &[bool],
) -> AdornedProgram {
    let mut reached: Vec<(PredId, Adornment)> = Vec::new();
    let mut seen: HashSet<(PredId, Adornment)> = HashSet::new();
    let mut clauses = Vec::new();
    let mut queue: VecDeque<(PredId, Adornment)> = VecDeque::new();
    if transformable[goal.index()] {
        queue.push_back((goal, pattern.clone()));
        seen.insert((goal, pattern.clone()));
    }
    while let Some((pred, adornment)) = queue.pop_front() {
        reached.push((pred, adornment.clone()));
        for (ci, clause) in program.clauses.iter().enumerate() {
            if clause.head.pred != pred || clause.head.args.len() != adornment.arity() {
                continue;
            }
            let (sip, body_adornments) = sip_order(clause, &adornment);
            for (li, ba) in body_adornments.iter().enumerate() {
                let (Some(ba), CBody::Atom(a)) = (ba, &clause.body[li]) else {
                    continue;
                };
                if !transformable[a.pred.index()] {
                    continue;
                }
                let key = (a.pred, ba.clone());
                if seen.insert(key.clone()) {
                    queue.push_back(key);
                }
            }
            clauses.push(AdornedClause {
                clause: ci as u32,
                adornment: adornment.clone(),
                sip,
                body_adornments,
            });
        }
    }
    AdornedProgram {
        goal,
        pattern: pattern.clone(),
        reached,
        clauses,
    }
}

/// The magic predicate's guard arguments for an atom under an adornment:
/// clones of the bound-position argument terms.
pub(crate) fn bound_args(atom: &CAtom, adornment: &Adornment) -> Vec<CSeq> {
    adornment
        .bound_positions()
        .map(|i| atom.args[i].clone())
        .collect()
}
