//! The IR-level lint engine: stable machine-readable diagnostics.
//!
//! Each lint has a stable code (`SL001`..`SL009`) and severity. Codes are
//! part of the public interface — `scripts/ci_check.sh` and the
//! `examples/analyze.rs` CLI match on them — and must not be renumbered.
//!
//! | Code  | Severity | Meaning |
//! |-------|----------|---------|
//! | SL001 | error    | constructive edge on a dependency cycle (not strongly safe, Theorem 8) |
//! | SL002 | warning  | head sequence variable absent from the body (range restriction) |
//! | SL003 | warning  | dead clause: some body predicate is provably empty |
//! | SL004 | warning  | body predicate that heads no clause and is not a database predicate |
//! | SL005 | warning  | duplicate or subsumed clause |
//! | SL006 | warning  | predicate used with inconsistent arities |
//! | SL007 | error    | head term calls a non-functional transducer (two outputs for one input) |
//! | SL008 | warning  | a called machine has dead (unreachable or non-co-reachable) states |
//! | SL009 | info     | fusable transducer chain: fused machine size, applied or declined |
//!
//! `SL007`–`SL009` are emitted by the machine-level fusion pass
//! ([`super::fuse`]), which needs a [`crate::registry::TransducerRegistry`]
//! alongside the compiled program.

use super::graph::{Condensation, PredGraph};
use crate::compile::{CBody, CompiledProgram};
use std::fmt;

/// Stable lint identifiers. The numeric codes (`SL001`..) never change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `SL001`: a constructive edge lies on a dependency cycle, so the
    /// program is not strongly safe and the fixpoint may diverge.
    ConstructiveCycle,
    /// `SL002`: a head *sequence* variable does not occur in the body; it
    /// ranges over the whole extended active domain (range-restriction
    /// violation). Free head *index* variables are exempt — they are the
    /// bounded structural-recursion idiom of Example 1.1.
    UnboundHeadVariable,
    /// `SL003`: a clause that can never fire because some body predicate
    /// is provably empty under the declared database predicates.
    DeadClause,
    /// `SL004`: a body predicate that heads no clause and is not a
    /// database predicate — it can never hold a fact.
    UndefinedBodyPredicate,
    /// `SL005`: a clause that exactly duplicates, or is subsumed by,
    /// an earlier clause with an identical head.
    DuplicateClause,
    /// `SL006`: a predicate used with more than one arity.
    InconsistentArity,
    /// `SL007`: a head term calls a registered transducer relation that is
    /// not functional — it can emit two distinct outputs for one input, so
    /// the call's value is ill-defined.
    NonFunctionalTransducerCall,
    /// `SL008`: a machine called from a head term has dead states
    /// (unreachable from the initial state, or unable to reach acceptance).
    DeadTransducerStates,
    /// `SL009`: a head term chains transducer calls that the algebra can
    /// (or tried to) fuse into one machine; reports the fused size and
    /// whether fusion was applied or declined with a reason.
    FusableTransducerChain,
}

impl LintCode {
    /// The stable `SLnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::ConstructiveCycle => "SL001",
            Self::UnboundHeadVariable => "SL002",
            Self::DeadClause => "SL003",
            Self::UndefinedBodyPredicate => "SL004",
            Self::DuplicateClause => "SL005",
            Self::InconsistentArity => "SL006",
            Self::NonFunctionalTransducerCall => "SL007",
            Self::DeadTransducerStates => "SL008",
            Self::FusableTransducerChain => "SL009",
        }
    }

    /// The fixed severity of this lint.
    pub fn severity(self) -> Severity {
        match self {
            Self::ConstructiveCycle | Self::NonFunctionalTransducerCall => Severity::Error,
            Self::FusableTransducerChain => Severity::Info,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity. The derived `Ord` ranks `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Purely informational: reports an analysis result (e.g. a fusion
    /// decision), not a defect.
    Info,
    /// The program will evaluate, but the flagged construct is redundant
    /// or suspicious.
    Warning,
    /// The program violates a condition the paper requires for
    /// termination; evaluation may diverge or exhaust budgets.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Info => "info",
            Self::Warning => "warning",
            Self::Error => "error",
        })
    }
}

/// One structured diagnostic emitted by the lint engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint that fired.
    pub code: LintCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// 0-based index of the offending clause, when the lint is clause-local.
    pub clause: Option<usize>,
    /// The predicate the lint is about, when there is a single one.
    pub pred: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(
        code: LintCode,
        clause: Option<usize>,
        pred: Option<String>,
        message: String,
    ) -> Self {
        Self {
            code,
            severity: code.severity(),
            clause,
            pred,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.severity)?;
        if let Some(c) = self.clause {
            write!(f, " (clause {c})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Predicates that can possibly hold a fact: the least fixpoint seeded by
/// the database predicates and closed under "a head is possibly non-empty
/// when every body atom's predicate is possibly non-empty" (empty bodies
/// fire unconditionally). Sound: a predicate outside this set is empty in
/// every model over the given database predicates.
pub(crate) fn possibly_nonempty(program: &CompiledProgram, edb: &[bool]) -> Vec<bool> {
    let mut ne = edb.to_vec();
    ne.resize(program.preds.len(), false);
    loop {
        let mut changed = false;
        for clause in &program.clauses {
            let h = clause.head.pred.index();
            if ne[h] {
                continue;
            }
            let fires = clause.body.iter().all(|lit| match lit {
                CBody::Atom(a) => ne[a.pred.index()],
                CBody::Eq(..) | CBody::Neq(..) => true,
            });
            if fires {
                ne[h] = true;
                changed = true;
            }
        }
        if !changed {
            return ne;
        }
    }
}

/// Run all six lint passes. `edb[p]` marks predicate `p` as a database
/// (assertable) predicate; `heads[p]` marks predicates heading a clause.
pub(crate) fn run_lints(
    program: &CompiledProgram,
    graph: &PredGraph,
    cond: &Condensation,
    edb: &[bool],
    heads: &[bool],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let name = |p: u32| program.preds.name(crate::compile::PredId(p)).to_string();

    // SL001: constructive edges inside a strongly connected component.
    for e in graph.constructive_cycle_edges(cond) {
        out.push(Diagnostic::new(
            LintCode::ConstructiveCycle,
            None,
            Some(name(e.from)),
            format!(
                "constructive dependency `{}` -> `{}` lies on a cycle; \
                 the program is not strongly safe (Theorem 8) and evaluation may diverge",
                name(e.from),
                name(e.to)
            ),
        ));
    }

    // SL002: head *sequence* variables with no body occurrence at all.
    // Free head *index* variables are exempt: `suffix(X[N:end]) :- r(X).`
    // (Example 1.1) is the paper's structural-recursion idiom, and a free
    // index variable is enumerated over the subject sequence's bounded
    // position range — unlike a free sequence variable, which ranges over
    // the entire (growing) extended active domain.
    for (ci, clause) in program.clauses.iter().enumerate() {
        let mut body_seq = vec![false; clause.n_seq];
        let mut seq_buf = Vec::new();
        for lit in &clause.body {
            seq_buf.clear();
            match lit {
                CBody::Atom(a) => {
                    for t in &a.args {
                        t.seq_vars(&mut seq_buf);
                    }
                }
                CBody::Eq(l, r) | CBody::Neq(l, r) => {
                    l.seq_vars(&mut seq_buf);
                    r.seq_vars(&mut seq_buf);
                }
            }
            for &v in &seq_buf {
                body_seq[v as usize] = true;
            }
        }
        seq_buf.clear();
        for t in &clause.head.args {
            t.seq_vars(&mut seq_buf);
        }
        seq_buf.sort_unstable();
        seq_buf.dedup();
        for &v in &seq_buf {
            if !body_seq[v as usize] {
                out.push(Diagnostic::new(
                    LintCode::UnboundHeadVariable,
                    Some(ci),
                    None,
                    format!(
                        "head variable `{}` does not occur in the body; \
                         it ranges over the entire extended active domain",
                        clause.seq_names[v as usize]
                    ),
                ));
            }
        }
    }

    // SL003 / SL004: emptiness-based reachability.
    let ne = possibly_nonempty(program, edb);
    for (ci, clause) in program.clauses.iter().enumerate() {
        let mut flagged: Vec<u32> = Vec::new();
        for lit in &clause.body {
            if let CBody::Atom(a) = lit {
                let p = a.pred.0;
                if flagged.contains(&p) {
                    continue;
                }
                let undefined = !heads[p as usize] && !edb[p as usize];
                if undefined {
                    out.push(Diagnostic::new(
                        LintCode::UndefinedBodyPredicate,
                        Some(ci),
                        Some(name(p)),
                        format!(
                            "body predicate `{}` heads no clause and is not a database \
                             predicate; it can never hold a fact",
                            name(p)
                        ),
                    ));
                    flagged.push(p);
                } else if !ne[p as usize] {
                    out.push(Diagnostic::new(
                        LintCode::DeadClause,
                        Some(ci),
                        Some(name(p)),
                        format!(
                            "clause can never fire: body predicate `{}` is provably empty \
                             under the declared database predicates",
                            name(p)
                        ),
                    ));
                    flagged.push(p);
                }
            }
        }
    }

    // SL005: exact duplicates and identical-head subsumption. Compiled
    // slot numbering is canonical (body-first occurrence order), so
    // structural equality of compiled literals is alpha-equivalence; the
    // subsumption check is conservative in the same way.
    let mut redundant = vec![false; program.clauses.len()];
    for j in 1..program.clauses.len() {
        if redundant[j] {
            continue;
        }
        for i in 0..j {
            if redundant[i] {
                continue;
            }
            let (a, b) = (&program.clauses[i], &program.clauses[j]);
            if a.head != b.head {
                continue;
            }
            if a.body == b.body {
                redundant[j] = true;
                out.push(Diagnostic::new(
                    LintCode::DuplicateClause,
                    Some(j),
                    None,
                    format!("clause is an exact duplicate of clause {i}"),
                ));
                break;
            }
            if subset(&a.body, &b.body) {
                redundant[j] = true;
                out.push(Diagnostic::new(
                    LintCode::DuplicateClause,
                    Some(j),
                    None,
                    format!(
                        "clause is subsumed by clause {i}: same head, \
                         body a superset of clause {i}'s body"
                    ),
                ));
                break;
            }
        }
    }

    // SL006: predicates used with more than one arity.
    let mut arities: Vec<Vec<usize>> = vec![Vec::new(); program.preds.len()];
    let mut note = |p: u32, n: usize| {
        let seen = &mut arities[p as usize];
        if !seen.contains(&n) {
            seen.push(n);
        }
    };
    for clause in &program.clauses {
        note(clause.head.pred.0, clause.head.args.len());
        for lit in &clause.body {
            if let CBody::Atom(a) = lit {
                note(a.pred.0, a.args.len());
            }
        }
    }
    for (p, mut seen) in arities.into_iter().enumerate() {
        if seen.len() > 1 {
            seen.sort_unstable();
            let list = seen
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            out.push(Diagnostic::new(
                LintCode::InconsistentArity,
                None,
                Some(name(p as u32)),
                format!(
                    "predicate `{}` is used with inconsistent arities: {list}",
                    name(p as u32)
                ),
            ));
        }
    }

    out
}

/// Multiset inclusion of compiled body literals (`small` within `big`).
fn subset(small: &[CBody], big: &[CBody]) -> bool {
    let mut used = vec![false; big.len()];
    small.iter().all(|lit| {
        big.iter().enumerate().any(|(k, cand)| {
            if !used[k] && cand == lit {
                used[k] = true;
                true
            } else {
                false
            }
        })
    })
}
