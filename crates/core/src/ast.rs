//! Abstract syntax of Sequence Datalog and Transducer Datalog (Section 3.1
//! and Section 7.1).
//!
//! The term language has two layers:
//!
//! * **index terms** — integers, index variables, `end`, closed under `+`
//!   and `-`;
//! * **sequence terms** — constant sequences, sequence variables, *indexed
//!   terms* `s[n1:n2]` (where `s` is a variable or constant — nesting like
//!   `(s1•s2)[1:N]` is excluded by the grammar, mirroring the paper),
//!   *constructive terms* `s1 • s2` (written `++` in the concrete syntax)
//!   and, in Transducer Datalog, *transducer terms* `@T(s1,…,sm)`.
//!
//! Constructive and transducer terms are only legal in clause **heads**
//! (enforced by [`crate::compile`]); this is what separates safe structural
//! recursion from unsafe constructive recursion.

use seqlog_sequence::{Alphabet, SeqId, SeqStore};
use std::fmt;

/// An index term (Section 3.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum IndexTerm {
    /// A non-negative integer literal.
    Int(i64),
    /// An index variable (`N`, `M`, …).
    Var(String),
    /// The keyword `end` — the length of the enclosing indexed term's base.
    End,
    /// `n1 + n2`.
    Add(Box<IndexTerm>, Box<IndexTerm>),
    /// `n1 - n2`.
    Sub(Box<IndexTerm>, Box<IndexTerm>),
}

impl IndexTerm {
    /// Collect the variable names occurring in this term.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            Self::Int(_) | Self::End => {}
            Self::Var(v) => out.push(v.clone()),
            Self::Add(a, b) | Self::Sub(a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }
}

/// The base of an indexed term: a sequence variable or a constant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum IndexedBase {
    /// A sequence variable.
    Var(String),
    /// An interned constant sequence.
    Const(SeqId),
}

/// A sequence term (Section 3.1, extended with transducer terms in
/// Section 7.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SeqTerm {
    /// An interned constant sequence (string literal in the syntax).
    Const(SeqId),
    /// A sequence variable (`X`, `Y`, …).
    Var(String),
    /// `base[lo : hi]` — contiguous-subsequence extraction.
    Indexed {
        /// The subject sequence (variable or constant).
        base: IndexedBase,
        /// Start position.
        lo: IndexTerm,
        /// End position.
        hi: IndexTerm,
    },
    /// `s1 ++ s2` — concatenation (constructive; heads only).
    Concat(Box<SeqTerm>, Box<SeqTerm>),
    /// `@name(s1, …, sm)` — a generalized-transducer call (heads only).
    Transducer {
        /// The registered transducer's name.
        name: String,
        /// Input terms.
        args: Vec<SeqTerm>,
    },
}

impl SeqTerm {
    /// True when the term contains a constructive (`++`) or transducer
    /// subterm — i.e. when its evaluation can create new sequences.
    pub fn is_constructive(&self) -> bool {
        match self {
            Self::Const(_) | Self::Var(_) | Self::Indexed { .. } => false,
            Self::Concat(..) | Self::Transducer { .. } => true,
        }
    }

    /// True when the term contains a transducer subterm.
    pub fn has_transducer(&self) -> bool {
        match self {
            Self::Const(_) | Self::Var(_) | Self::Indexed { .. } => false,
            Self::Concat(a, b) => a.has_transducer() || b.has_transducer(),
            Self::Transducer { .. } => true,
        }
    }

    /// Collect sequence-variable names (into `seq`) and index-variable names
    /// (into `idx`) in occurrence order.
    pub fn vars(&self, seq: &mut Vec<String>, idx: &mut Vec<String>) {
        match self {
            Self::Const(_) => {}
            Self::Var(v) => seq.push(v.clone()),
            Self::Indexed { base, lo, hi } => {
                if let IndexedBase::Var(v) = base {
                    seq.push(v.clone());
                }
                lo.vars(idx);
                hi.vars(idx);
            }
            Self::Concat(a, b) => {
                a.vars(seq, idx);
                b.vars(seq, idx);
            }
            Self::Transducer { args, .. } => {
                for a in args {
                    a.vars(seq, idx);
                }
            }
        }
    }
}

/// A predicate atom `p(s1, …, sn)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<SeqTerm>,
}

/// A body literal: an atom, an (in)equality between sequence terms, or the
/// trivially true body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BodyLit {
    /// A positive predicate atom.
    Atom(Atom),
    /// `s1 = s2`.
    Eq(SeqTerm, SeqTerm),
    /// `s1 != s2`.
    Neq(SeqTerm, SeqTerm),
}

/// A clause `head :- body.` (a *fact* when the body is empty; the concrete
/// syntax also accepts `head :- true.`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clause {
    /// The head atom.
    pub head: Atom,
    /// Body literals (conjunction).
    pub body: Vec<BodyLit>,
}

impl Clause {
    /// True when the head contains a constructive or transducer term
    /// (the paper's *constructive clause*).
    pub fn is_constructive(&self) -> bool {
        self.head.args.iter().any(SeqTerm::is_constructive)
    }

    /// Predicate names occurring in the body.
    pub fn body_preds(&self) -> impl Iterator<Item = &str> {
        self.body.iter().filter_map(|l| match l {
            BodyLit::Atom(a) => Some(a.pred.as_str()),
            _ => None,
        })
    }
}

/// A Sequence Datalog / Transducer Datalog program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// The clauses, in source order.
    pub clauses: Vec<Clause>,
}

impl Program {
    /// All predicate names mentioned anywhere (heads and bodies), deduped,
    /// in first-occurrence order.
    pub fn predicates(&self) -> Vec<String> {
        let mut seen = Vec::new();
        let mut push = |p: &str| {
            if !seen.iter().any(|s| s == p) {
                seen.push(p.to_string());
            }
        };
        for c in &self.clauses {
            push(&c.head.pred);
            for p in c.body_preds() {
                push(p);
            }
        }
        seen
    }

    /// Transducer names mentioned in heads, deduped.
    pub fn transducer_names(&self) -> Vec<String> {
        fn collect(t: &SeqTerm, out: &mut Vec<String>) {
            match t {
                SeqTerm::Transducer { name, args } => {
                    if !out.iter().any(|n| n == name) {
                        out.push(name.clone());
                    }
                    for a in args {
                        collect(a, out);
                    }
                }
                SeqTerm::Concat(a, b) => {
                    collect(a, out);
                    collect(b, out);
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        for c in &self.clauses {
            for a in &c.head.args {
                collect(a, &mut out);
            }
        }
        out
    }

    /// True when no clause uses a constructive or transducer term — the
    /// *Non-constructive Sequence Datalog* fragment of Theorem 3.
    pub fn is_non_constructive(&self) -> bool {
        !self.clauses.iter().any(Clause::is_constructive)
    }
}

/// Pretty-printing of programs back to concrete syntax (used by the guarding
/// and translation transformations so their output can be inspected and
/// re-parsed).
pub struct DisplayProgram<'a> {
    /// Program to render.
    pub program: &'a Program,
    /// Interner for sequence constants.
    pub store: &'a SeqStore,
    /// Interner for symbol names.
    pub alphabet: &'a Alphabet,
}

impl fmt::Display for DisplayProgram<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.program.clauses {
            self.fmt_atom(f, &c.head)?;
            if !c.body.is_empty() {
                write!(f, " :- ")?;
                for (i, l) in c.body.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match l {
                        BodyLit::Atom(a) => self.fmt_atom(f, a)?,
                        BodyLit::Eq(a, b) => {
                            self.fmt_term(f, a)?;
                            write!(f, " = ")?;
                            self.fmt_term(f, b)?;
                        }
                        BodyLit::Neq(a, b) => {
                            self.fmt_term(f, a)?;
                            write!(f, " != ")?;
                            self.fmt_term(f, b)?;
                        }
                    }
                }
            }
            writeln!(f, ".")?;
        }
        Ok(())
    }
}

impl DisplayProgram<'_> {
    fn fmt_atom(&self, f: &mut fmt::Formatter<'_>, a: &Atom) -> fmt::Result {
        write!(f, "{}", a.pred)?;
        if !a.args.is_empty() {
            write!(f, "(")?;
            for (i, t) in a.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                self.fmt_term(f, t)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }

    fn fmt_term(&self, f: &mut fmt::Formatter<'_>, t: &SeqTerm) -> fmt::Result {
        match t {
            SeqTerm::Const(id) => {
                write!(f, "\"{}\"", self.alphabet.render(self.store.get(*id)))
            }
            SeqTerm::Var(v) => write!(f, "{v}"),
            SeqTerm::Indexed { base, lo, hi } => {
                match base {
                    IndexedBase::Var(v) => write!(f, "{v}")?,
                    IndexedBase::Const(id) => {
                        write!(f, "\"{}\"", self.alphabet.render(self.store.get(*id)))?;
                    }
                }
                write!(f, "[")?;
                fmt_index(f, lo)?;
                write!(f, ":")?;
                fmt_index(f, hi)?;
                write!(f, "]")
            }
            SeqTerm::Concat(a, b) => {
                self.fmt_term(f, a)?;
                write!(f, " ++ ")?;
                self.fmt_term(f, b)
            }
            SeqTerm::Transducer { name, args } => {
                write!(f, "@{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    self.fmt_term(f, a)?;
                }
                write!(f, ")")
            }
        }
    }
}

fn fmt_index(f: &mut fmt::Formatter<'_>, t: &IndexTerm) -> fmt::Result {
    match t {
        IndexTerm::Int(i) => write!(f, "{i}"),
        IndexTerm::Var(v) => write!(f, "{v}"),
        IndexTerm::End => write!(f, "end"),
        IndexTerm::Add(a, b) => {
            fmt_index(f, a)?;
            write!(f, "+")?;
            fmt_index(f, b)
        }
        IndexTerm::Sub(a, b) => {
            fmt_index(f, a)?;
            write!(f, "-")?;
            fmt_index(f, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> SeqTerm {
        SeqTerm::Var(n.into())
    }

    #[test]
    fn constructive_detection() {
        let plain = Clause {
            head: Atom {
                pred: "p".into(),
                args: vec![var("X")],
            },
            body: vec![],
        };
        assert!(!plain.is_constructive());
        let concat = Clause {
            head: Atom {
                pred: "p".into(),
                args: vec![SeqTerm::Concat(Box::new(var("X")), Box::new(var("Y")))],
            },
            body: vec![],
        };
        assert!(concat.is_constructive());
        let trans = Clause {
            head: Atom {
                pred: "p".into(),
                args: vec![SeqTerm::Transducer {
                    name: "t".into(),
                    args: vec![var("X")],
                }],
            },
            body: vec![],
        };
        assert!(trans.is_constructive());
    }

    #[test]
    fn var_collection_separates_kinds() {
        let t = SeqTerm::Indexed {
            base: IndexedBase::Var("X".into()),
            lo: IndexTerm::Var("N".into()),
            hi: IndexTerm::Add(
                Box::new(IndexTerm::Var("N".into())),
                Box::new(IndexTerm::Int(1)),
            ),
        };
        let mut seq = Vec::new();
        let mut idx = Vec::new();
        t.vars(&mut seq, &mut idx);
        assert_eq!(seq, vec!["X"]);
        assert_eq!(idx, vec!["N", "N"]);
    }

    #[test]
    fn program_predicate_listing() {
        let p = Program {
            clauses: vec![Clause {
                head: Atom {
                    pred: "a".into(),
                    args: vec![],
                },
                body: vec![
                    BodyLit::Atom(Atom {
                        pred: "b".into(),
                        args: vec![],
                    }),
                    BodyLit::Atom(Atom {
                        pred: "a".into(),
                        args: vec![],
                    }),
                ],
            }],
        };
        assert_eq!(p.predicates(), vec!["a".to_string(), "b".to_string()]);
        assert!(p.is_non_constructive());
    }

    #[test]
    fn transducer_name_collection_sees_nested_terms() {
        let p = Program {
            clauses: vec![Clause {
                head: Atom {
                    pred: "p".into(),
                    args: vec![SeqTerm::Concat(
                        Box::new(SeqTerm::Transducer {
                            name: "t1".into(),
                            args: vec![var("X")],
                        }),
                        Box::new(SeqTerm::Transducer {
                            name: "t2".into(),
                            args: vec![SeqTerm::Transducer {
                                name: "t1".into(),
                                args: vec![var("Y")],
                            }],
                        }),
                    )],
                },
                body: vec![],
            }],
        };
        assert_eq!(
            p.transducer_names(),
            vec!["t1".to_string(), "t2".to_string()]
        );
    }
}
