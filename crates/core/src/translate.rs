//! The Theorem 7 translation: Transducer Datalog → Sequence Datalog.
//!
//! Every Transducer Datalog program `P_td` is rewritten into a plain
//! Sequence Datalog program `P_sd` computing the same extents for every
//! predicate of `P_td ∪ db`, preserving finiteness. Following the paper's
//! construction:
//!
//! * each head occurrence of a transducer term `@T(s1,…,sm)` is replaced by
//!   a fresh variable `V`, adding `pt_T(s1,…,sm,V)` to the body (rule γ′)
//!   and emitting `inp_T(s1 ++ "⊣", …, sm ++ "⊣") :- body` (rule γ″) so the
//!   simulation runs **only on inputs the program actually feeds to T** —
//!   this is what preserves finiteness;
//! * per machine, `comp_T(consumed1,…,consumedm, output, state)` simulates
//!   partial computations: γ2 seeds `comp_T(ε,…,ε, ε, q0)`, one rule per δ
//!   entry advances it (consumption is structural recursion on the marked
//!   inputs; emission is constructive recursion on the output — exactly the
//!   Section 1.3 recipe), and γ1 projects the final output into `pt_T` when
//!   every head sits on the end marker;
//! * a subtransducer call becomes a `pt_S` subgoal plus an `inp_S` feeding
//!   rule, recursively for all orders.
//!
//! Deviations from the paper's text (see DESIGN.md): we generate one rule
//! per transition entry instead of joining a reified `delta_T` relation
//! (the specialization the paper itself uses in Theorem 1), we mark
//! every tape exactly once (the paper's γ″/γ′5 as printed would double-mark
//! subtransducer inputs), and `comp_T` carries the **input tuple** alongside
//! the consumed prefixes. The paper keys partial computations by consumed
//! prefix *values* alone, which is sound for one input (a deterministic
//! machine's state and output are functions of the consumed prefix) but
//! unsound for m ≥ 2: two invocations whose inputs share compatible prefixes
//! can cross-contaminate, because head scheduling depends on symbols beyond
//! the consumed prefixes. Carrying `(X1,…,Xm)` in `comp_T` restores the
//! intended per-invocation simulation.
//!
//! Nested transducer terms and constructive transducer *arguments* are
//! lifted first: `@T1(@T2(X))` introduces a fresh variable for the inner
//! call, and `@T(X ++ Y)` routes the concatenation through an auxiliary
//! predicate keyed by the argument's non-constructive leaves (the Theorem 8
//! decomposition, which "can only increase the extended active domain" and
//! never changes the original predicates' extents).

use crate::ast::{Atom, BodyLit, Clause, IndexTerm, IndexedBase, Program, SeqTerm};
use crate::registry::TransducerRegistry;
use seqlog_sequence::{Alphabet, FxHashSet, SeqStore};
use seqlog_transducer::{HeadMove, OutputAction, Transducer};
use std::fmt;

/// Translation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// A transducer term names a machine absent from the registry.
    UnknownTransducer(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTransducer(n) => write!(f, "unknown transducer @{n}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translate a Transducer Datalog program into an equivalent Sequence
/// Datalog program (Theorem 7).
pub fn translate_program(
    program: &Program,
    registry: &TransducerRegistry,
    alphabet: &mut Alphabet,
    store: &mut SeqStore,
) -> Result<Program, TranslateError> {
    let mut tr = Translator {
        registry,
        alphabet,
        store,
        clauses: Vec::new(),
        emitted_machines: FxHashSet::default(),
        existing_preds: program.predicates().into_iter().collect(),
        fresh_var: 0,
        fresh_aux: 0,
    };

    for clause in &program.clauses {
        tr.clause(clause)?;
    }
    Ok(Program {
        clauses: tr.clauses,
    })
}

struct Translator<'a> {
    registry: &'a TransducerRegistry,
    alphabet: &'a mut Alphabet,
    store: &'a mut SeqStore,
    clauses: Vec<Clause>,
    /// Machines whose γ1/γ2/δ rules were already generated (by pred base).
    emitted_machines: FxHashSet<String>,
    existing_preds: FxHashSet<String>,
    fresh_var: usize,
    fresh_aux: usize,
}

impl Translator<'_> {
    fn clause(&mut self, clause: &Clause) -> Result<(), TranslateError> {
        if !clause.head.args.iter().any(SeqTerm::has_transducer) {
            self.clauses.push(clause.clone());
            return Ok(());
        }
        // Rewrite head args bottom-up, accumulating new body literals.
        let mut body = clause.body.clone();
        let mut head_args = Vec::with_capacity(clause.head.args.len());
        for arg in &clause.head.args {
            head_args.push(self.rewrite(arg, &mut body)?);
        }
        self.clauses.push(Clause {
            head: Atom {
                pred: clause.head.pred.clone(),
                args: head_args,
            },
            body,
        });
        Ok(())
    }

    /// Replace transducer nodes in `t` by fresh variables, pushing `pt_T`
    /// subgoals onto `body` and emitting `inp_T` feeding rules.
    fn rewrite(&mut self, t: &SeqTerm, body: &mut Vec<BodyLit>) -> Result<SeqTerm, TranslateError> {
        match t {
            SeqTerm::Const(_) | SeqTerm::Var(_) | SeqTerm::Indexed { .. } => Ok(t.clone()),
            SeqTerm::Concat(a, b) => Ok(SeqTerm::Concat(
                Box::new(self.rewrite(a, body)?),
                Box::new(self.rewrite(b, body)?),
            )),
            SeqTerm::Transducer { name, args } => {
                let machine = self
                    .registry
                    .get(name)
                    .ok_or_else(|| TranslateError::UnknownTransducer(name.clone()))?
                    .clone();
                // Process arguments first (inner transducers, then any
                // remaining constructive structure).
                let mut flat_args = Vec::with_capacity(args.len());
                for a in args {
                    let a = self.rewrite(a, body)?;
                    flat_args.push(if a.is_constructive() {
                        self.lift_constructive(a, body)
                    } else {
                        a
                    });
                }

                let base = self.machine_base(name);
                self.emit_machine_rules(&base, &machine);

                // γ″ — feed the marked inputs to the simulation.
                let marker = self.marker_const(&machine);
                let marked: Vec<SeqTerm> = flat_args
                    .iter()
                    .map(|s| SeqTerm::Concat(Box::new(s.clone()), Box::new(marker.clone())))
                    .collect();
                self.clauses.push(Clause {
                    head: Atom {
                        pred: format!("inp_{base}"),
                        args: marked,
                    },
                    body: body.clone(),
                });

                // γ′ — the rewritten occurrence.
                let v = self.fresh_var();
                let mut pt_args = flat_args;
                pt_args.push(SeqTerm::Var(v.clone()));
                body.push(BodyLit::Atom(Atom {
                    pred: format!("pt_{base}"),
                    args: pt_args,
                }));
                Ok(SeqTerm::Var(v))
            }
        }
    }

    /// Route a constructive, transducer-free term through an auxiliary
    /// predicate keyed by its non-constructive leaves.
    fn lift_constructive(&mut self, t: SeqTerm, body: &mut Vec<BodyLit>) -> SeqTerm {
        fn leaves(t: &SeqTerm, out: &mut Vec<SeqTerm>) {
            match t {
                SeqTerm::Const(_) => {}
                SeqTerm::Var(_) | SeqTerm::Indexed { .. } => {
                    if !out.contains(t) {
                        out.push(t.clone());
                    }
                }
                SeqTerm::Concat(a, b) => {
                    leaves(a, out);
                    leaves(b, out);
                }
                SeqTerm::Transducer { .. } => {
                    unreachable!("inner transducers already rewritten")
                }
            }
        }
        let mut key = Vec::new();
        leaves(&t, &mut key);

        self.fresh_aux += 1;
        let pred = self.unique_pred(&format!("aux_{}", self.fresh_aux));
        let mut head_args = key.clone();
        head_args.push(t);
        self.clauses.push(Clause {
            head: Atom {
                pred: pred.clone(),
                args: head_args,
            },
            body: body.clone(),
        });

        let v = self.fresh_var();
        let mut call_args = key;
        call_args.push(SeqTerm::Var(v.clone()));
        body.push(BodyLit::Atom(Atom {
            pred,
            args: call_args,
        }));
        SeqTerm::Var(v)
    }

    fn fresh_var(&mut self) -> String {
        self.fresh_var += 1;
        format!("Vtr{}", self.fresh_var)
    }

    fn machine_base(&mut self, name: &str) -> String {
        let sanitized: String = name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        sanitized
    }

    fn unique_pred(&mut self, base: &str) -> String {
        let mut name = base.to_string();
        while self.existing_preds.contains(&name) {
            name.push('_');
        }
        self.existing_preds.insert(name.clone());
        name
    }

    fn marker_const(&mut self, machine: &Transducer) -> SeqTerm {
        let id = self.store.intern(&[machine.end_marker]);
        SeqTerm::Const(id)
    }

    fn state_const(
        &mut self,
        base: &str,
        machine: &Transducer,
        q: seqlog_transducer::StateId,
    ) -> SeqTerm {
        let sym = self
            .alphabet
            .intern(&format!("q:{base}:{}", machine.state_name(q)));
        let id = self.store.intern(&[sym]);
        SeqTerm::Const(id)
    }

    /// Emit γ1, γ2 and the per-transition rules for `machine` (and,
    /// recursively, its subtransducers). Idempotent per predicate base.
    ///
    /// `comp` has arity `2m + 2`: the marked input tuple, the consumed
    /// prefixes, the current output, and the control state (see the module
    /// docs for why the inputs are carried).
    fn emit_machine_rules(&mut self, base: &str, machine: &Transducer) {
        if !self.emitted_machines.insert(base.to_string()) {
            return;
        }
        let m = machine.num_inputs;
        let inp = format!("inp_{base}");
        let comp = format!("comp_{base}");
        let pt = format!("pt_{base}");

        let xvar = |i: usize| SeqTerm::Var(format!("X{i}"));
        let unmarked = |i: usize| SeqTerm::Indexed {
            base: IndexedBase::Var(format!("X{i}")),
            lo: IndexTerm::Int(1),
            hi: IndexTerm::Sub(Box::new(IndexTerm::End), Box::new(IndexTerm::Int(1))),
        };
        let consumed = |i: usize| SeqTerm::Indexed {
            base: IndexedBase::Var(format!("X{i}")),
            lo: IndexTerm::Int(1),
            hi: IndexTerm::Var(format!("N{i}")),
        };
        let inp_atom = BodyLit::Atom(Atom {
            pred: inp.clone(),
            args: (0..m).map(xvar).collect(),
        });

        // γ1: project finished computations (all heads on ⊣) into pt.
        {
            let mut pt_args: Vec<SeqTerm> = (0..m).map(unmarked).collect();
            pt_args.push(SeqTerm::Var("Z".into()));
            let mut comp_args: Vec<SeqTerm> = (0..m).map(xvar).collect();
            comp_args.extend((0..m).map(unmarked));
            comp_args.push(SeqTerm::Var("Z".into()));
            comp_args.push(SeqTerm::Var("Q".into()));
            self.clauses.push(Clause {
                head: Atom {
                    pred: pt.clone(),
                    args: pt_args,
                },
                body: vec![BodyLit::Atom(Atom {
                    pred: comp.clone(),
                    args: comp_args,
                })],
            });
        }

        // γ2: start a simulation for every fed input tuple.
        {
            let eps = SeqTerm::Const(self.store.empty());
            let q0 = self.state_const(base, machine, machine.initial);
            let mut head_args: Vec<SeqTerm> = (0..m).map(xvar).collect();
            head_args.extend((0..m).map(|_| eps.clone()));
            head_args.push(eps.clone());
            head_args.push(q0);
            self.clauses.push(Clause {
                head: Atom {
                    pred: comp.clone(),
                    args: head_args,
                },
                body: vec![inp_atom.clone()],
            });
        }

        // One rule per transition entry.
        let transitions: Vec<_> = machine
            .iter_transitions()
            .map(|(q, read, t)| (q, read.to_vec(), t.clone()))
            .collect();
        for (q, read, tr) in transitions {
            let qc = self.state_const(base, machine, q);
            let qn = self.state_const(base, machine, tr.next);

            // comp(X1, …, Xm, X1[1:N1], …, Z, q)
            let mut comp_args: Vec<SeqTerm> = (0..m).map(xvar).collect();
            comp_args.extend((0..m).map(consumed));
            comp_args.push(SeqTerm::Var("Z".into()));
            comp_args.push(qc);
            let mut body = vec![BodyLit::Atom(Atom {
                pred: comp.clone(),
                args: comp_args,
            })];
            // Symbol checks: Xi[Ni+1] = read_i.
            for (i, &read_sym) in read.iter().enumerate().take(m) {
                let sym_const = SeqTerm::Const(self.store.intern(&[read_sym]));
                body.push(BodyLit::Eq(
                    SeqTerm::Indexed {
                        base: IndexedBase::Var(format!("X{i}")),
                        lo: IndexTerm::Add(
                            Box::new(IndexTerm::Var(format!("N{i}"))),
                            Box::new(IndexTerm::Int(1)),
                        ),
                        hi: IndexTerm::Add(
                            Box::new(IndexTerm::Var(format!("N{i}"))),
                            Box::new(IndexTerm::Int(1)),
                        ),
                    },
                    sym_const,
                ));
            }

            // New consumed prefixes.
            let new_consumed: Vec<SeqTerm> = (0..m)
                .map(|i| {
                    let ni = IndexTerm::Var(format!("N{i}"));
                    let hi = match tr.moves[i] {
                        HeadMove::Consume => {
                            IndexTerm::Add(Box::new(ni), Box::new(IndexTerm::Int(1)))
                        }
                        HeadMove::Stay => ni,
                    };
                    SeqTerm::Indexed {
                        base: IndexedBase::Var(format!("X{i}")),
                        lo: IndexTerm::Int(1),
                        hi,
                    }
                })
                .collect();

            // New output term (and possible subtransducer plumbing).
            let new_output: SeqTerm = match tr.output {
                OutputAction::Epsilon => SeqTerm::Var("Z".into()),
                OutputAction::Emit(c) => {
                    let cc = SeqTerm::Const(self.store.intern(&[c]));
                    SeqTerm::Concat(Box::new(SeqTerm::Var("Z".into())), Box::new(cc))
                }
                OutputAction::Call(si) => {
                    let sub = machine.subtransducers[si].clone();
                    let sub_base = format!("{base}_s{si}");
                    self.emit_machine_rules(&sub_base, &sub);

                    // Feed the subtransducer: caller's (already marked)
                    // inputs plus the freshly marked current output.
                    let marker = self.marker_const(&sub);
                    let mut feed_args: Vec<SeqTerm> = (0..m).map(xvar).collect();
                    feed_args.push(SeqTerm::Concat(
                        Box::new(SeqTerm::Var("Z".into())),
                        Box::new(marker),
                    ));
                    self.clauses.push(Clause {
                        head: Atom {
                            pred: format!("inp_{sub_base}"),
                            args: feed_args,
                        },
                        body: body.clone(),
                    });

                    // pt_sub(unmarked inputs…, Z, Z2) in the body.
                    let mut pt_args: Vec<SeqTerm> = (0..m).map(unmarked).collect();
                    pt_args.push(SeqTerm::Var("Z".into()));
                    pt_args.push(SeqTerm::Var("Z2".into()));
                    body.push(BodyLit::Atom(Atom {
                        pred: format!("pt_{sub_base}"),
                        args: pt_args,
                    }));
                    SeqTerm::Var("Z2".into())
                }
            };

            let mut head_args: Vec<SeqTerm> = (0..m).map(xvar).collect();
            head_args.extend(new_consumed);
            head_args.push(new_output);
            head_args.push(qn);
            self.clauses.push(Clause {
                head: Atom {
                    pred: comp.clone(),
                    args: head_args,
                },
                body,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::engine::Engine;
    use crate::eval::EvalConfig;
    use seqlog_transducer::library;

    /// Evaluate both the TD program (native machines) and its translation
    /// (pure Sequence Datalog) and compare the extent of `pred`.
    fn assert_equivalent(engine: &mut Engine, src: &str, db: &Database, pred: &str) {
        let td = engine.parse_program(src).unwrap();
        let sd = translate_program(
            &td,
            &engine.registry,
            &mut engine.alphabet,
            &mut engine.store,
        )
        .unwrap();
        assert!(
            sd.transducer_names().is_empty(),
            "translation must be pure SD"
        );

        let m_td = engine.evaluate(&td, db).unwrap();
        let m_sd = engine
            .evaluate_with(
                &sd,
                db,
                &EvalConfig {
                    max_rounds: 100_000,
                    ..Default::default()
                },
            )
            .unwrap();

        let mut a = engine.rendered_tuples(&m_td, pred);
        let mut b = engine.rendered_tuples(&m_sd, pred);
        a.sort();
        b.sort();
        a.dedup();
        b.dedup();
        assert_eq!(
            a, b,
            "extent of {pred} differs between TD and translated SD"
        );
    }

    #[test]
    fn order_1_mapper_translates() {
        let mut e = Engine::new();
        let t = library::transcribe(&mut e.alphabet);
        e.register_transducer("transcribe", t);
        let mut db = Database::new();
        e.add_fact(&mut db, "dnaseq", &["acgt"]);
        e.add_fact(&mut db, "dnaseq", &["ttgg"]);
        assert_equivalent(
            &mut e,
            "rnaseq(D, @transcribe(D)) :- dnaseq(D).",
            &db,
            "rnaseq",
        );
    }

    #[test]
    fn order_1_two_input_append_translates() {
        let mut e = Engine::new();
        let syms: Vec<_> = "ab".chars().map(|c| e.alphabet.intern_char(c)).collect();
        let t = library::append(&mut e.alphabet, &syms);
        e.register_transducer("append", t);
        let mut db = Database::new();
        e.add_fact(&mut db, "r", &["a"]);
        e.add_fact(&mut db, "r", &["bb"]);
        assert_equivalent(
            &mut e,
            "cat(X, Y, @append(X, Y)) :- r(X), r(Y).",
            &db,
            "cat",
        );
    }

    #[test]
    fn order_2_square_translates() {
        // Exercises subtransducer plumbing: square calls append at every
        // step.
        let mut e = Engine::new();
        let syms: Vec<_> = "ab".chars().map(|c| e.alphabet.intern_char(c)).collect();
        let t = library::square(&mut e.alphabet, &syms);
        e.register_transducer("square", t);
        let mut db = Database::new();
        e.add_fact(&mut db, "r", &["ab"]);
        assert_equivalent(&mut e, "sq(X, @square(X)) :- r(X).", &db, "sq");
    }

    #[test]
    fn nested_transducer_terms_are_lifted() {
        let mut e = Engine::new();
        let t1 = library::transcribe(&mut e.alphabet);
        let t2 = library::translate(&mut e.alphabet);
        e.register_transducer("transcribe", t1);
        e.register_transducer("translate", t2);
        let mut db = Database::new();
        e.add_fact(&mut db, "dnaseq", &["ctactg"]);
        assert_equivalent(
            &mut e,
            "protein(D, @translate(@transcribe(D))) :- dnaseq(D).",
            &db,
            "protein",
        );
    }

    #[test]
    fn constructive_arguments_are_lifted() {
        let mut e = Engine::new();
        let syms: Vec<_> = "ab".chars().map(|c| e.alphabet.intern_char(c)).collect();
        let t = library::copy(&mut e.alphabet, &syms);
        e.register_transducer("copy", t);
        let mut db = Database::new();
        e.add_fact(&mut db, "r", &["a"]);
        e.add_fact(&mut db, "r", &["b"]);
        assert_equivalent(&mut e, "c(X, Y, @copy(X ++ Y)) :- r(X), r(Y).", &db, "c");
    }

    #[test]
    fn unknown_transducer_is_reported() {
        let mut e = Engine::new();
        let td = e.parse_program("p(@nope(X)) :- q(X).").unwrap();
        let err = translate_program(&td, &e.registry, &mut e.alphabet, &mut e.store).unwrap_err();
        assert_eq!(err, TranslateError::UnknownTransducer("nope".into()));
    }

    #[test]
    fn simulation_only_runs_on_fed_inputs() {
        // Finiteness preservation: the translated program must not simulate
        // the machine on sequences the TD program never feeds it. We check
        // that inp_* contains exactly the fed (marked) inputs.
        let mut e = Engine::new();
        let t = library::transcribe(&mut e.alphabet);
        e.register_transducer("transcribe", t);
        let mut db = Database::new();
        e.add_fact(&mut db, "dnaseq", &["ac"]);
        e.add_fact(&mut db, "other", &["ttttttttt"]);
        let td = e
            .parse_program("rnaseq(D, @transcribe(D)) :- dnaseq(D).")
            .unwrap();
        let sd = translate_program(&td, &e.registry, &mut e.alphabet, &mut e.store).unwrap();
        let m = e.evaluate(&sd, &db).unwrap();
        let inp = e.rendered_tuples(&m, "inp_transcribe");
        assert_eq!(inp.len(), 1);
        assert!(
            inp[0][0].starts_with("ac"),
            "only the fed input is simulated: {inp:?}"
        );
    }
}
