//! Sequence databases (Section 2.2): finite sets of ground atoms whose
//! arguments are interned sequences.

use seqlog_sequence::SeqId;

/// A database instance: a list of ground facts `pred(σ1, …, σk)`.
///
/// Build via [`Database::add`] with pre-interned sequences, or through
/// [`crate::engine::Engine::add_fact`] which interns string arguments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Database {
    facts: Vec<(String, Vec<SeqId>)>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a ground fact.
    pub fn add(&mut self, pred: impl Into<String>, tuple: Vec<SeqId>) {
        self.facts.push((pred.into(), tuple));
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterate over `(pred, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[SeqId])> {
        self.facts.iter().map(|(p, t)| (p.as_str(), t.as_slice()))
    }

    /// Append every fact of `other` (which must be interned against the
    /// same store). Duplicates are kept — the fact store dedupes at
    /// seeding. The differential fuzz harness assembles its union
    /// database batch-wise with this, mirroring the session route's
    /// batch-wise `assert_db`.
    pub fn extend_from(&mut self, other: &Database) {
        self.facts.extend(other.facts.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.add("r", vec![SeqId(1)]);
        db.add("s", vec![SeqId(1), SeqId(2)]);
        assert_eq!(db.len(), 2);
        let preds: Vec<&str> = db.iter().map(|(p, _)| p).collect();
        assert_eq!(preds, vec!["r", "s"]);
    }
}
