//! The transducer registry: binds `@name(…)` terms in Transducer Datalog
//! programs to concrete generalized transducers (Section 7.1's "special
//! interpreted function symbols, one for each generalized sequence
//! transducer").

use seqlog_sequence::FxHashMap;
use seqlog_transducer::Transducer;

/// A name → machine mapping used to interpret transducer terms.
#[derive(Clone, Default, Debug)]
pub struct TransducerRegistry {
    map: FxHashMap<String, Transducer>,
}

impl TransducerRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `machine` under `name` (replacing any previous binding).
    pub fn register(&mut self, name: impl Into<String>, machine: Transducer) {
        self.map.insert(name.into(), machine);
    }

    /// Look up a machine.
    pub fn get(&self, name: &str) -> Option<&Transducer> {
        self.map.get(name)
    }

    /// Registered names (arbitrary order).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// Number of registered machines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no machine is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The maximum order among the registered machines used by `names`,
    /// or 0 when none is used (a Sequence Datalog program "has order 0",
    /// Section 7.1).
    pub fn program_order<'a>(&self, names: impl Iterator<Item = &'a str>) -> usize {
        names
            .filter_map(|n| self.map.get(n))
            .map(Transducer::order)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqlog_sequence::Alphabet;
    use seqlog_transducer::library;

    #[test]
    fn register_and_lookup() {
        let mut a = Alphabet::new();
        let mut reg = TransducerRegistry::new();
        assert!(reg.is_empty());
        reg.register("transcribe", library::transcribe(&mut a));
        assert_eq!(reg.len(), 1);
        assert!(reg.get("transcribe").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn program_order_is_max_machine_order() {
        let mut a = Alphabet::new();
        let syms: Vec<_> = "ab".chars().map(|c| a.intern_char(c)).collect();
        let mut reg = TransducerRegistry::new();
        reg.register("copy", library::copy(&mut a, &syms));
        reg.register("square", library::square(&mut a, &syms));
        assert_eq!(reg.program_order(["copy"].into_iter()), 1);
        assert_eq!(reg.program_order(["copy", "square"].into_iter()), 2);
        assert_eq!(reg.program_order([].into_iter()), 0);
    }
}
