//! The transducer registry: binds `@name(…)` terms in Transducer Datalog
//! programs to concrete generalized transducers (Section 7.1's "special
//! interpreted function symbols, one for each generalized sequence
//! transducer").

use seqlog_sequence::{FxHashMap, Sym};
use seqlog_transducer::{Fst, Network, Transducer};

/// A name → machine mapping used to interpret transducer terms.
///
/// Besides runtime [`Transducer`]s the registry can hold:
///
/// * nondeterministic [`Fst`] *relations* ([`TransducerRegistry::register_fst`])
///   — analyzed by the lint engine (`SL007` fires when a head term calls a
///   non-functional one) and callable only when deterministically
///   representable;
/// * [`Network`]s ([`TransducerRegistry::register_network`]) — unary chains
///   are fused by the transducer algebra at registration time and the fused
///   machine is cached under the network's name.
#[derive(Clone, Default, Debug)]
pub struct TransducerRegistry {
    map: FxHashMap<String, Transducer>,
    fsts: FxHashMap<String, Fst>,
    networks: FxHashMap<String, Network>,
}

impl TransducerRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `machine` under `name` (replacing any previous binding).
    pub fn register(&mut self, name: impl Into<String>, machine: Transducer) {
        self.map.insert(name.into(), machine);
    }

    /// Register a finite-state transducer *relation* under `name`. The
    /// machine is kept for analysis (functionality, dead states); when it
    /// is deterministic and representable in the runtime model it is also
    /// lowered to a callable [`Transducer`] under the same name.
    pub fn register_fst(&mut self, name: impl Into<String>, fst: Fst, end_marker: Sym) {
        let name = name.into();
        if let Ok(t) = fst.to_transducer(&name, end_marker) {
            self.map.insert(name.clone(), t);
        }
        self.fsts.insert(name, fst);
    }

    /// Register an acyclic network under its name. When the network is a
    /// unary chain of 1-input order-1 machines, the chain is composed,
    /// trimmed and minimized by the transducer algebra and the fused
    /// machine is cached as a callable [`Transducer`] under the network's
    /// name; other topologies are stored for analysis only.
    pub fn register_network(&mut self, network: Network) {
        let name = network.name().to_string();
        if let Some(machines) = network.chain_machines() {
            let caps = seqlog_transducer::DeterminizeCaps::default();
            if let Ok(fused) = crate::analysis::fuse::fuse_chain(&name, &machines, &caps) {
                self.map.insert(name.clone(), fused);
            }
        }
        self.networks.insert(name, network);
    }

    /// Look up a machine.
    pub fn get(&self, name: &str) -> Option<&Transducer> {
        self.map.get(name)
    }

    /// Look up a registered [`Fst`] relation.
    pub fn fst(&self, name: &str) -> Option<&Fst> {
        self.fsts.get(name)
    }

    /// Look up a registered [`Network`].
    pub fn network(&self, name: &str) -> Option<&Network> {
        self.networks.get(name)
    }

    /// Registered network names (arbitrary order).
    pub fn network_names(&self) -> impl Iterator<Item = &str> {
        self.networks.keys().map(String::as_str)
    }

    /// Registered [`Fst`] relation names (arbitrary order). Disjoint from
    /// [`names`](TransducerRegistry::names) only for relations that do not
    /// lower to a callable machine.
    pub fn fst_names(&self) -> impl Iterator<Item = &str> {
        self.fsts.keys().map(String::as_str)
    }

    /// Registered names (arbitrary order).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// Number of registered machines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no machine is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The maximum order among the registered machines used by `names`,
    /// or 0 when none is used (a Sequence Datalog program "has order 0",
    /// Section 7.1).
    pub fn program_order<'a>(&self, names: impl Iterator<Item = &'a str>) -> usize {
        names
            .filter_map(|n| self.map.get(n))
            .map(Transducer::order)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqlog_sequence::Alphabet;
    use seqlog_transducer::library;

    #[test]
    fn register_and_lookup() {
        let mut a = Alphabet::new();
        let mut reg = TransducerRegistry::new();
        assert!(reg.is_empty());
        reg.register("transcribe", library::transcribe(&mut a));
        assert_eq!(reg.len(), 1);
        assert!(reg.get("transcribe").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn program_order_is_max_machine_order() {
        let mut a = Alphabet::new();
        let syms: Vec<_> = "ab".chars().map(|c| a.intern_char(c)).collect();
        let mut reg = TransducerRegistry::new();
        reg.register("copy", library::copy(&mut a, &syms));
        reg.register("square", library::square(&mut a, &syms));
        assert_eq!(reg.program_order(["copy"].into_iter()), 1);
        assert_eq!(reg.program_order(["copy", "square"].into_iter()), 2);
        assert_eq!(reg.program_order([].into_iter()), 0);
    }
}
