//! Binary snapshots of a durable session's state.
//!
//! A snapshot captures everything replay would otherwise rebuild from the
//! full log: the alphabet, the sequence interner, the predicate table, the
//! fact relations and base-fact relations (in insertion order — recovery
//! is bit-for-bit, so order is part of the state), the cumulative
//! [`EvalStats`], and the [`Fixpoint`] watermarks. It deliberately does
//! **not** capture the extended active domain's membership: Definition 4
//! makes the domain a function of the interpretation, so
//! [`Fixpoint::restore`] recomputes it by closing over the loaded facts —
//! trusting a serialized domain would let a corrupt file smuggle in
//! members (or drop them) with no fact justifying the difference. What it
//! does capture is the domain's member *order*: a live session inserts
//! members chronologically (asserts and derivation commits interleaved),
//! the recomputation visits them in relation-iteration order, and the
//! order is observable — free-variable clauses enumerate the domain in
//! insertion order, so future derived tuples land in an order that depends
//! on it. Install re-imposes the recorded order only after verifying it is
//! exactly a permutation of the recomputed closure
//! ([`Fixpoint::adopt_domain_order`]), keeping recovery bit-for-bit
//! without ever trusting disk for membership.
//!
//! # File format
//!
//! ```text
//! magic "SQSNAP01" (8 bytes) · crc32(payload) u32 LE · payload
//! payload: version u32 · covered u64
//!        · alphabet names · sequences (as Sym indices, SeqId order)
//!        · predicate names · fact relations · base relations
//!        · EvalStats · sizes_done · virgin u8 · domain_settled u8
//!        · domain member order (SeqIds, insertion order)
//! ```
//!
//! The checksum covers the whole payload; any failed structural check
//! (counts, id bounds, interner misalignment) is a
//! [`RecoveryError::Corrupt`], never a panic. Files are written to a
//! `.tmp` sibling and atomically renamed, so a crash mid-snapshot leaves
//! the previous snapshot intact; `covered` (the absolute count of log
//! records the snapshot includes) is embedded in the file name —
//! `snap-<covered>.bin` — and the two newest snapshots are retained.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::compile::PredTable;
use crate::eval::interp::{FactStore, Relation};
use crate::eval::{EvalStats, Fixpoint};
use crate::wal::{crc32, put_str, put_u32, put_u64, ByteReader, RecoveryError};
use seqlog_sequence::{Alphabet, SeqId, SeqStore, Sym};

const SNAP_MAGIC: &[u8; 8] = b"SQSNAP01";
const SNAP_VERSION: u32 = 1;

/// File name of the snapshot covering `covered` records (zero-padded so
/// lexicographic and numeric order agree).
pub fn snapshot_file_name(covered: u64) -> String {
    format!("snap-{covered:020}.bin")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snap-")?.strip_suffix(".bin")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Snapshot files in `dir`, newest (highest `covered`) first.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, RecoveryError> {
    let mut out = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(|e| RecoveryError::io(&format!("list {}", dir.display()), &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| RecoveryError::io("list snapshots", &e))?;
        let name = entry.file_name();
        if let Some(covered) = name.to_str().and_then(parse_snapshot_name) {
            out.push((covered, entry.path()));
        }
    }
    out.sort_by_key(|e| std::cmp::Reverse(e.0));
    Ok(out)
}

/// Delete all but the `keep` newest snapshots in `dir`.
pub fn prune_snapshots(dir: &Path, keep: usize) -> Result<(), RecoveryError> {
    for (_, path) in list_snapshots(dir)?.into_iter().skip(keep) {
        fs::remove_file(&path)
            .map_err(|e| RecoveryError::io(&format!("remove {}", path.display()), &e))?;
    }
    Ok(())
}

/// A decoded (or to-be-written) snapshot. All ids are stored as raw
/// indices; [`SessionSnapshot::install`] re-interns everything in order and
/// verifies the interners reproduce exactly those indices.
#[derive(Clone, Debug)]
pub struct SessionSnapshot {
    /// Absolute count of log records this state includes.
    pub covered: u64,
    alphabet: Vec<String>,
    seqs: Vec<Vec<u32>>,
    preds: Vec<String>,
    rels: Vec<Vec<Vec<u32>>>,
    base: Vec<Vec<Vec<u32>>>,
    stats: EvalStats,
    sizes_done: Vec<u64>,
    virgin: bool,
    domain_settled: bool,
    domain_order: Vec<u32>,
}

fn relation_tuples(rel: &Relation) -> Vec<Vec<u32>> {
    rel.iter()
        .map(|t| t.iter().map(|id| id.0).collect())
        .collect()
}

impl SessionSnapshot {
    /// Capture the current state of a session's interners and fixpoint.
    pub fn capture(covered: u64, alphabet: &Alphabet, store: &SeqStore, fx: &Fixpoint) -> Self {
        let alphabet: Vec<String> = alphabet.iter().map(|(_, name)| name.to_string()).collect();
        let seqs: Vec<Vec<u32>> = (0..store.count())
            .map(|i| store.get(SeqId(i as u32)).iter().map(|s| s.0).collect())
            .collect();
        let facts = fx.facts();
        let preds: Vec<String> = facts.preds().iter().map(|(_, n)| n.to_string()).collect();
        let rels: Vec<Vec<Vec<u32>>> = facts.relations().map(|(_, r)| relation_tuples(r)).collect();
        let base: Vec<Vec<Vec<u32>>> = fx.base_relations().iter().map(relation_tuples).collect();
        Self {
            covered,
            alphabet,
            seqs,
            preds,
            rels,
            base,
            // Raw, not finalized: `Fixpoint::stats` latches `max_seq_len`
            // against the current domain into its returned copy, which the
            // live session only adopts at its next run — persisting the
            // latched copy would make the act of checkpointing observable.
            stats: fx.stats_raw(),
            sizes_done: fx.sizes_done().iter().map(|&n| n as u64).collect(),
            virgin: fx.is_virgin(),
            domain_settled: fx.domain_settled(),
            domain_order: fx.domain().iter().map(|id| id.0).collect(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_u32(&mut p, SNAP_VERSION);
        put_u64(&mut p, self.covered);
        put_u32(&mut p, self.alphabet.len() as u32);
        for name in &self.alphabet {
            put_str(&mut p, name);
        }
        put_u32(&mut p, self.seqs.len() as u32);
        for seq in &self.seqs {
            put_u32(&mut p, seq.len() as u32);
            for &s in seq {
                put_u32(&mut p, s);
            }
        }
        put_u32(&mut p, self.preds.len() as u32);
        for name in &self.preds {
            put_str(&mut p, name);
        }
        let put_rels = |p: &mut Vec<u8>, rels: &[Vec<Vec<u32>>]| {
            put_u32(p, rels.len() as u32);
            for rel in rels {
                put_u32(p, rel.len() as u32);
                for tuple in rel {
                    put_u32(p, tuple.len() as u32);
                    for &id in tuple {
                        put_u32(p, id);
                    }
                }
            }
        };
        put_rels(&mut p, &self.rels);
        put_rels(&mut p, &self.base);
        for v in [
            self.stats.rounds as u64,
            self.stats.facts as u64,
            self.stats.domain_size as u64,
            self.stats.max_seq_len as u64,
            self.stats.derivations,
            self.stats.transducer_calls,
            self.stats.transducer_steps,
        ] {
            put_u64(&mut p, v);
        }
        put_u32(&mut p, self.sizes_done.len() as u32);
        for &n in &self.sizes_done {
            put_u64(&mut p, n);
        }
        p.push(u8::from(self.virgin));
        p.push(u8::from(self.domain_settled));
        put_u32(&mut p, self.domain_order.len() as u32);
        for &id in &self.domain_order {
            put_u32(&mut p, id);
        }
        p
    }

    fn decode(payload: &[u8], path: &Path) -> Result<Self, RecoveryError> {
        let bad = |detail: String| RecoveryError::corrupt(path, detail);
        let mut r = ByteReader::new(payload);
        (|| -> Result<Self, String> {
            let version = r.take_u32()?;
            if version != SNAP_VERSION {
                return Err(format!("unsupported snapshot version {version}"));
            }
            let covered = r.take_u64()?;
            let nalpha = r.take_count(4)?;
            let mut alphabet = Vec::with_capacity(nalpha);
            for _ in 0..nalpha {
                alphabet.push(r.take_str()?);
            }
            let nseqs = r.take_count(4)?;
            let mut seqs = Vec::with_capacity(nseqs);
            for _ in 0..nseqs {
                let len = r.take_count(4)?;
                let mut seq = Vec::with_capacity(len);
                for _ in 0..len {
                    seq.push(r.take_u32()?);
                }
                seqs.push(seq);
            }
            let npreds = r.take_count(4)?;
            let mut preds = Vec::with_capacity(npreds);
            for _ in 0..npreds {
                preds.push(r.take_str()?);
            }
            let take_rels = |r: &mut ByteReader<'_>| -> Result<Vec<Vec<Vec<u32>>>, String> {
                let nrels = r.take_count(4)?;
                let mut rels = Vec::with_capacity(nrels);
                for _ in 0..nrels {
                    let ntuples = r.take_count(4)?;
                    let mut rel = Vec::with_capacity(ntuples);
                    for _ in 0..ntuples {
                        let arity = r.take_count(4)?;
                        let mut tuple = Vec::with_capacity(arity);
                        for _ in 0..arity {
                            tuple.push(r.take_u32()?);
                        }
                        rel.push(tuple);
                    }
                    rels.push(rel);
                }
                Ok(rels)
            };
            let rels = take_rels(&mut r)?;
            let base = take_rels(&mut r)?;
            let mut stat = || r.take_u64();
            let stats = EvalStats {
                rounds: stat()? as usize,
                facts: stat()? as usize,
                domain_size: stat()? as usize,
                max_seq_len: stat()? as usize,
                derivations: stat()?,
                transducer_calls: stat()?,
                transducer_steps: stat()?,
            };
            let ndone = r.take_count(8)?;
            let mut sizes_done = Vec::with_capacity(ndone);
            for _ in 0..ndone {
                sizes_done.push(r.take_u64()?);
            }
            let flag = |b: u8| match b {
                0 => Ok(false),
                1 => Ok(true),
                v => Err(format!("invalid flag byte {v}")),
            };
            let virgin = flag(r.take_u8()?)?;
            let domain_settled = flag(r.take_u8()?)?;
            let norder = r.take_count(4)?;
            let mut domain_order = Vec::with_capacity(norder);
            for _ in 0..norder {
                domain_order.push(r.take_u32()?);
            }
            Ok(Self {
                covered,
                alphabet,
                seqs,
                preds,
                rels,
                base,
                stats,
                sizes_done,
                virgin,
                domain_settled,
                domain_order,
            })
        })()
        .and_then(|snap| {
            r.finish()?;
            Ok(snap)
        })
        .map_err(bad)
    }

    /// Write the snapshot into `dir` as `snap-<covered>.bin`, atomically
    /// (`.tmp` then rename), and prune to the `keep` newest.
    pub fn write(&self, dir: &Path, keep: usize) -> Result<PathBuf, RecoveryError> {
        let payload = self.encode();
        let mut bytes = Vec::with_capacity(12 + payload.len());
        bytes.extend_from_slice(SNAP_MAGIC);
        put_u32(&mut bytes, crc32(&payload));
        bytes.extend_from_slice(&payload);
        let final_path = dir.join(snapshot_file_name(self.covered));
        let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(self.covered)));
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| RecoveryError::io(&format!("create {}", tmp_path.display()), &e))?;
        f.write_all(&bytes)
            .and_then(|()| f.sync_data())
            .map_err(|e| RecoveryError::io(&format!("write {}", tmp_path.display()), &e))?;
        drop(f);
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| RecoveryError::io(&format!("rename to {}", final_path.display()), &e))?;
        // Make the rename itself durable where the platform allows it.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        prune_snapshots(dir, keep)?;
        Ok(final_path)
    }

    /// Read and checksum-validate the snapshot at `path`.
    pub fn read(path: &Path) -> Result<Self, RecoveryError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| RecoveryError::io(&format!("read {}", path.display()), &e))?;
        if bytes.len() < 12 || &bytes[..8] != SNAP_MAGIC {
            return Err(RecoveryError::corrupt(path, "missing or damaged header"));
        }
        let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let payload = &bytes[12..];
        if crc32(payload) != crc {
            return Err(RecoveryError::corrupt(path, "checksum failure"));
        }
        Self::decode(payload, path)
    }

    /// Rebuild interners and fixpoint state from the snapshot. Every id is
    /// validated as it is re-interned: symbols must index the loaded
    /// alphabet, tuples must index the loaded store, and the append-only
    /// interners must reproduce exactly the recorded indices — any drift
    /// means the file does not describe a reachable state. The extended
    /// active domain's membership is **rebuilt** from the loaded facts
    /// inside [`Fixpoint::restore`] (never deserialized); the recorded
    /// member order is then re-imposed, but only after verifying it is
    /// exactly a permutation of that rebuilt closure.
    ///
    /// `stale_watermarks` is a test-only mutant (see
    /// [`crate::wal::WalReadOptions`]): it marks every loaded fact as
    /// already processed, which the recovery fuzz oracle must catch.
    pub fn install(
        &self,
        path: &Path,
        stale_watermarks: bool,
    ) -> Result<(Alphabet, SeqStore, Fixpoint), RecoveryError> {
        let bad = |detail: String| RecoveryError::corrupt(path, detail);
        let mut alphabet = Alphabet::new();
        for (i, name) in self.alphabet.iter().enumerate() {
            let sym = alphabet.intern(name);
            if sym.0 as usize != i {
                return Err(bad(format!("alphabet entry {i} re-interned as {}", sym.0)));
            }
        }
        let mut store = SeqStore::new();
        let nsyms = self.alphabet.len() as u32;
        let mut syms = Vec::new();
        for (i, seq) in self.seqs.iter().enumerate() {
            syms.clear();
            for &s in seq {
                if s >= nsyms {
                    return Err(bad(format!("sequence {i} uses unknown symbol {s}")));
                }
                syms.push(Sym(s));
            }
            let id = store.intern(&syms);
            if id.0 as usize != i {
                return Err(bad(format!("sequence {i} re-interned as {}", id.0)));
            }
        }
        let nseqs = self.seqs.len() as u32;
        let mut preds = PredTable::new();
        for (i, name) in self.preds.iter().enumerate() {
            let pid = preds.intern(name);
            if pid.index() != i {
                return Err(bad(format!("predicate {i} re-interned as {}", pid.index())));
            }
        }
        if self.rels.len() != self.preds.len() {
            return Err(bad(format!(
                "{} relations for {} predicates",
                self.rels.len(),
                self.preds.len()
            )));
        }
        if self.base.len() > self.preds.len() {
            return Err(bad("more base relations than predicates".to_string()));
        }
        let build_rel = |tuples: &[Vec<u32>], what: &str| -> Result<Relation, RecoveryError> {
            let mut rel = Relation::default();
            for tuple in tuples {
                for &id in tuple {
                    if id >= nseqs {
                        return Err(bad(format!("{what} tuple uses unknown sequence {id}")));
                    }
                }
                let boxed: Box<[SeqId]> = tuple.iter().map(|&id| SeqId(id)).collect();
                if !rel.insert(boxed) {
                    return Err(bad(format!("duplicate tuple in {what}")));
                }
            }
            Ok(rel)
        };
        let mut facts = FactStore::with_preds(preds);
        for (i, tuples) in self.rels.iter().enumerate() {
            let pid = crate::compile::PredId(i as u32);
            let rel = build_rel(tuples, &format!("relation {i}"))?;
            for tuple in rel.iter() {
                if !facts.insert(pid, tuple.into()) {
                    return Err(bad(format!("duplicate tuple in relation {i}")));
                }
            }
        }
        let mut base = Vec::with_capacity(self.base.len());
        for (i, tuples) in self.base.iter().enumerate() {
            base.push(build_rel(tuples, &format!("base relation {i}"))?);
        }
        let mut sizes_done = Vec::with_capacity(self.sizes_done.len());
        if self.sizes_done.len() > self.rels.len() {
            return Err(bad("watermarks for more relations than exist".to_string()));
        }
        for (i, &n) in self.sizes_done.iter().enumerate() {
            if n as usize > self.rels[i].len() {
                return Err(bad(format!(
                    "watermark {n} exceeds relation {i}'s {} tuples",
                    self.rels[i].len()
                )));
            }
            sizes_done.push(n as usize);
        }
        let mut fx = Fixpoint::restore(
            &mut store,
            facts,
            base,
            self.stats,
            sizes_done,
            self.virgin,
            self.domain_settled,
        );
        let order: Vec<SeqId> = self.domain_order.iter().map(|&id| SeqId(id)).collect();
        if !fx.adopt_domain_order(&store, &order) {
            return Err(bad(
                "domain order is not a permutation of the rebuilt extended domain".to_string(),
            ));
        }
        if stale_watermarks {
            fx.force_settled_watermarks();
        }
        Ok((alphabet, store, fx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_names_sort_numerically() {
        assert!(snapshot_file_name(9) < snapshot_file_name(10));
        assert_eq!(parse_snapshot_name(&snapshot_file_name(42)), Some(42));
        assert_eq!(parse_snapshot_name("snap-.bin"), None);
        assert_eq!(parse_snapshot_name("snap-12.tmp"), None);
        assert_eq!(parse_snapshot_name("wal.bin"), None);
    }
}
