//! Recursive-descent parser for Sequence Datalog / Transducer Datalog.
//!
//! Grammar (see [`crate::lexer`] for the token shapes):
//!
//! ```text
//! program   := clause*
//! clause    := atom ( ':-' body )? '.'
//! body      := 'true' | lit (',' lit)*
//! lit       := atom | term ('=' | '!=') term
//! atom      := ident ( '(' term (',' term)* ')' )?
//! term      := primary ('++' primary)*
//! primary   := string index? | VAR index? | '@' ident '(' term (',' term)* ')'
//! index     := '[' idx (':' idx)? ']'            -- s[i] sugar for s[i:i]
//! idx       := iatom (('+'|'-') iatom)*
//! iatom     := INT | VAR | 'end'
//! ```
//!
//! The grammar structurally enforces the paper's term formation rules: the
//! base of an indexed term is a variable or constant (never a constructive
//! term), and index arithmetic never escapes `[...]`.

use crate::ast::{Atom, BodyLit, Clause, IndexTerm, IndexedBase, Program, SeqTerm};
use crate::lexer::{lex, LexError, Spanned, Tok};
use seqlog_sequence::{Alphabet, SeqStore};
use std::fmt;

/// A parse error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub msg: String,
    /// Line number, 1-based (0 when at end of input).
    pub line: u32,
    /// Column number, 1-based (0 when at end of input).
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.msg,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parse a program, interning constants into `alphabet` / `store`.
pub fn parse_program(
    src: &str,
    alphabet: &mut Alphabet,
    store: &mut SeqStore,
) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        alphabet,
        store,
    };
    let mut clauses = Vec::new();
    while !p.at_end() {
        clauses.push(p.clause()?);
    }
    Ok(Program { clauses })
}

struct Parser<'a> {
    toks: Vec<Spanned>,
    pos: usize,
    alphabet: &'a mut Alphabet,
    store: &'a mut SeqStore,
}

impl Parser<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self.toks.get(self.pos).map_or((0, 0), |s| (s.line, s.col));
        Err(ParseError {
            msg: msg.into(),
            line,
            col,
        })
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected {tok}, found {t}"))
            }
            None => self.err(format!("expected {tok}, found end of input")),
        }
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        let head = self.atom()?;
        let body = match self.peek() {
            Some(Tok::Implies) => {
                self.pos += 1;
                self.body()?
            }
            _ => Vec::new(),
        };
        self.expect(&Tok::Dot)?;
        Ok(Clause { head, body })
    }

    fn body(&mut self) -> Result<Vec<BodyLit>, ParseError> {
        // `true` as the entire body (paper style: `abcn(ε,ε,ε) :- true.`).
        if let (Some(Tok::Ident(id)), Some(Tok::Dot)) = (self.peek(), self.peek2()) {
            if id == "true" {
                self.pos += 1;
                return Ok(Vec::new());
            }
        }
        let mut lits = vec![self.lit()?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            lits.push(self.lit()?);
        }
        Ok(lits)
    }

    fn lit(&mut self) -> Result<BodyLit, ParseError> {
        if let Some(Tok::Ident(id)) = self.peek() {
            if id == "true" {
                // `true` conjoined with other literals: the unit literal.
                self.pos += 1;
                return Ok(BodyLit::Eq(
                    SeqTerm::Const(self.store.empty()),
                    SeqTerm::Const(self.store.empty()),
                ));
            }
            return Ok(BodyLit::Atom(self.atom()?));
        }
        let lhs = self.term()?;
        match self.next().map(|s| s.tok) {
            Some(Tok::Eq) => Ok(BodyLit::Eq(lhs, self.term()?)),
            Some(Tok::Neq) => Ok(BodyLit::Neq(lhs, self.term()?)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("expected `=` or `!=` after term literal")
            }
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let pred = match self.next().map(|s| s.tok) {
            Some(Tok::Ident(s)) => s,
            other => {
                self.pos = self.pos.saturating_sub(usize::from(other.is_some()));
                return self.err("expected predicate name");
            }
        };
        if pred == "end" || pred == "true" {
            return self.err(format!("`{pred}` is a reserved keyword"));
        }
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            args.push(self.term()?);
            while self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
                args.push(self.term()?);
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(Atom { pred, args })
    }

    fn term(&mut self) -> Result<SeqTerm, ParseError> {
        let mut t = self.primary()?;
        while self.peek() == Some(&Tok::Concat) {
            self.pos += 1;
            let rhs = self.primary()?;
            t = SeqTerm::Concat(Box::new(t), Box::new(rhs));
        }
        Ok(t)
    }

    fn primary(&mut self) -> Result<SeqTerm, ParseError> {
        match self.next().map(|s| s.tok) {
            Some(Tok::Str(s)) => {
                let syms = self.alphabet.seq_of_str(&s);
                let id = self.store.intern_vec(syms);
                self.maybe_indexed(IndexedBase::Const(id), SeqTerm::Const(id))
            }
            Some(Tok::Var(v)) => {
                let plain = SeqTerm::Var(v.clone());
                self.maybe_indexed(IndexedBase::Var(v), plain)
            }
            Some(Tok::At) => {
                let Some(Tok::Ident(name)) = self.next().map(|s| s.tok) else {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected transducer name after `@`");
                };
                self.expect(&Tok::LParen)?;
                let mut args = vec![self.term()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    args.push(self.term()?);
                }
                self.expect(&Tok::RParen)?;
                Ok(SeqTerm::Transducer { name, args })
            }
            other => {
                self.pos = self.pos.saturating_sub(usize::from(other.is_some()));
                self.err("expected a sequence term")
            }
        }
    }

    fn maybe_indexed(&mut self, base: IndexedBase, plain: SeqTerm) -> Result<SeqTerm, ParseError> {
        if self.peek() != Some(&Tok::LBracket) {
            return Ok(plain);
        }
        self.pos += 1;
        let lo = self.index_term()?;
        let hi = if self.peek() == Some(&Tok::Colon) {
            self.pos += 1;
            self.index_term()?
        } else {
            lo.clone() // s[i] is sugar for s[i:i]
        };
        self.expect(&Tok::RBracket)?;
        Ok(SeqTerm::Indexed { base, lo, hi })
    }

    fn index_term(&mut self) -> Result<IndexTerm, ParseError> {
        let mut t = self.index_atom()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    let rhs = self.index_atom()?;
                    t = IndexTerm::Add(Box::new(t), Box::new(rhs));
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let rhs = self.index_atom()?;
                    t = IndexTerm::Sub(Box::new(t), Box::new(rhs));
                }
                _ => return Ok(t),
            }
        }
    }

    fn index_atom(&mut self) -> Result<IndexTerm, ParseError> {
        match self.next().map(|s| s.tok) {
            Some(Tok::Int(i)) => Ok(IndexTerm::Int(i)),
            Some(Tok::Var(v)) => Ok(IndexTerm::Var(v)),
            Some(Tok::Ident(s)) if s == "end" => Ok(IndexTerm::End),
            other => {
                self.pos = self.pos.saturating_sub(usize::from(other.is_some()));
                self.err("expected integer, index variable, or `end`")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DisplayProgram;

    fn parse(src: &str) -> (Program, Alphabet, SeqStore) {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let p = parse_program(src, &mut a, &mut st).unwrap();
        (p, a, st)
    }

    #[test]
    fn parses_example_1_1_suffixes() {
        let (p, _, _) = parse("suffix(X[N:end]) :- r(X).");
        assert_eq!(p.clauses.len(), 1);
        let c = &p.clauses[0];
        assert_eq!(c.head.pred, "suffix");
        assert!(matches!(
            &c.head.args[0],
            SeqTerm::Indexed { base: IndexedBase::Var(v), lo: IndexTerm::Var(n), hi: IndexTerm::End }
                if v == "X" && n == "N"
        ));
        assert!(!c.is_constructive());
    }

    #[test]
    fn parses_example_1_2_concatenation() {
        let (p, _, _) = parse("answer(X ++ Y) :- r(X), r(Y).");
        assert!(p.clauses[0].is_constructive());
        assert_eq!(p.clauses[0].body.len(), 2);
    }

    #[test]
    fn parses_example_1_3_abcn() {
        let src = r#"
            answer(X) :- r(X), abcn(X[1:N1], X[N1+1:N2], X[N2+1:end]).
            abcn("", "", "") :- true.
            abcn(X, Y, Z) :- X[1] = "a", Y[1] = "b", Z[1] = "c",
                             abcn(X[2:end], Y[2:end], Z[2:end]).
        "#;
        let (p, _, st) = parse(src);
        assert_eq!(p.clauses.len(), 3);
        // `abcn("","","") :- true.` has an empty body after desugaring.
        assert!(p.clauses[1].body.is_empty());
        // X[1] desugars to X[1:1].
        match &p.clauses[2].body[0] {
            BodyLit::Eq(SeqTerm::Indexed { lo, hi, .. }, SeqTerm::Const(c)) => {
                assert_eq!(lo, &IndexTerm::Int(1));
                assert_eq!(hi, &IndexTerm::Int(1));
                assert_eq!(st.len_of(*c), 1);
            }
            other => panic!("unexpected literal {other:?}"),
        }
    }

    #[test]
    fn parses_example_1_4_reverse() {
        let src = r#"
            answer(Y) :- r(X), reverse(X, Y).
            reverse("", "") :- true.
            reverse(X[1:N+1], X[N+1] ++ Y) :- r(X), reverse(X[1:N], Y).
        "#;
        let (p, _, _) = parse(src);
        assert_eq!(p.clauses.len(), 3);
        assert!(p.clauses[2].is_constructive());
        // Head's first arg is X[1:N+1].
        match &p.clauses[2].head.args[0] {
            SeqTerm::Indexed {
                hi: IndexTerm::Add(a, b),
                ..
            } => {
                assert_eq!(**a, IndexTerm::Var("N".into()));
                assert_eq!(**b, IndexTerm::Int(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_transducer_datalog_example_7_1() {
        let src = r#"
            rnaseq(D, @transcribe(D)) :- dnaseq(D).
            proteinseq(D, @translate(R)) :- rnaseq(D, R).
        "#;
        let (p, _, _) = parse(src);
        assert_eq!(
            p.transducer_names(),
            vec!["transcribe".to_string(), "translate".to_string()]
        );
        assert!(p.clauses.iter().all(Clause::is_constructive));
    }

    #[test]
    fn parses_zero_arity_atoms() {
        let (p, _, _) = parse("halted :- conf.");
        assert_eq!(p.clauses[0].head.pred, "halted");
        assert!(p.clauses[0].head.args.is_empty());
    }

    #[test]
    fn parses_inequality() {
        let (p, _, _) = parse("p(X, Y) :- q(X, Y), X != Y.");
        assert!(matches!(p.clauses[0].body[1], BodyLit::Neq(..)));
    }

    #[test]
    fn roundtrips_through_display() {
        let src = r#"reverse(X[1:N+1], X[N+1] ++ Y) :- r(X), reverse(X[1:N], Y)."#;
        let (p, mut a, mut st) = parse(src);
        let rendered = DisplayProgram {
            program: &p,
            store: &st,
            alphabet: &a,
        }
        .to_string();
        let p2 = parse_program(&rendered, &mut a, &mut st).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn rejects_reserved_predicate_names() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        assert!(parse_program("end(X) :- r(X).", &mut a, &mut st).is_err());
    }

    #[test]
    fn rejects_missing_dot() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let e = parse_program("p(X) :- q(X)", &mut a, &mut st).unwrap_err();
        assert!(e.msg.contains("expected `.`"), "{e}");
    }

    #[test]
    fn rejects_concat_of_nothing() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        assert!(parse_program("p(X ++ ) :- q(X).", &mut a, &mut st).is_err());
    }

    #[test]
    fn true_conjoined_desugars_to_trivial_equality() {
        let (p, _, _) = parse("p(X) :- true, q(X).");
        assert_eq!(p.clauses[0].body.len(), 2);
        assert!(matches!(p.clauses[0].body[0], BodyLit::Eq(..)));
    }
}
