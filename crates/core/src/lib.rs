//! # seqlog-core — Sequence Datalog and Transducer Datalog
//!
//! The primary contribution of Bonner & Mecca, *Sequences, Datalog, and
//! Transducers* (PODS 1995 / JCSS 57, 1998), implemented in full:
//!
//! * **Sequence Datalog** (Section 3): Datalog over sequence databases with
//!   interpreted *indexed terms* `X[N1:N2]` (structural recursion) and
//!   *constructive terms* `X ++ Y` (constructive recursion), evaluated to the
//!   least fixpoint of the `T_{P,db}` operator over the **extended active
//!   domain** ([`eval`]).
//! * **Transducer Datalog** (Section 7): heads may invoke generalized
//!   sequence transducers via `@name(…)` terms bound through a
//!   [`registry::TransducerRegistry`]; [`translate`] compiles any Transducer
//!   Datalog program to an equivalent plain Sequence Datalog program
//!   (Theorem 7).
//! * **Safety analysis** (Sections 5 and 8): dependency graphs, constructive
//!   cycles, strong safety, stratified construction, program order
//!   ([`safety`]), backed by the IR-level [`analysis`] subsystem whose SCC
//!   condensation also drives the evaluator's stratified schedule and whose
//!   lint engine emits stable `SL001`..`SL006` diagnostics.
//! * **Guarding** (Appendix B, Theorem 10): the `dom`-guarding
//!   transformation ([`guard`]).
//! * **Model theory** (Appendix A): model checking against the fixpoint
//!   semantics ([`model`]).
//!
//! Entry point: [`engine::Engine`].

// Every public item carries documentation, and a pedantic-subset of
// clippy is promoted to warn (CI runs clippy with `-D warnings`, so
// these are effectively deny). The subset is an allowlist on purpose:
// each lint here pulled its weight on this codebase; blanket
// `clippy::pedantic` was evaluated and rejected as mostly noise
// (must_use_candidate, module_name_repetitions, …).
#![warn(missing_docs)]
#![warn(
    clippy::cast_lossless,
    clippy::explicit_iter_loop,
    clippy::inefficient_to_string,
    clippy::items_after_statements,
    clippy::manual_let_else,
    clippy::map_unwrap_or,
    clippy::match_same_arms,
    clippy::redundant_closure_for_method_calls,
    clippy::semicolon_if_nothing_returned,
    clippy::uninlined_format_args
)]

pub mod analysis;
pub mod ast;
pub mod compile;
pub mod database;
pub mod engine;
pub mod eval;
pub mod guard;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod registry;
pub mod safety;
pub mod session;
pub mod snapshot;
pub mod translate;
pub mod wal;

pub use analysis::{
    Adornment, Bind, Diagnostic, FuseLimits, FusionDecision, LintCode, MagicProgram, ProgramReport,
    Severity,
};
pub use ast::{Atom, BodyLit, Clause, IndexTerm, IndexedBase, Program, SeqTerm};
pub use database::Database;
pub use engine::Engine;
pub use eval::{
    BudgetKind, EvalConfig, EvalError, EvalStats, Fixpoint, Model, Scheduling, Strategy,
};
pub use session::{DurabilityOptions, EngineSession};
pub use wal::RecoveryError;

/// Commonly used items, re-exported for `use seqlog_core::prelude::*`.
pub mod prelude {
    pub use crate::analysis::{
        Adornment, Bind, Diagnostic, FuseLimits, FusionDecision, LintCode, ProgramReport, Severity,
    };
    pub use crate::ast::Program;
    pub use crate::database::Database;
    pub use crate::engine::Engine;
    pub use crate::eval::{EvalConfig, EvalError, Model, Scheduling, Strategy};
    pub use crate::guard::guard_program;
    pub use crate::model::is_model;
    pub use crate::registry::TransducerRegistry;
    pub use crate::safety::{analyze, analyze_with_db};
    pub use crate::session::{DurabilityOptions, EngineSession};
    pub use crate::translate::translate_program;
    pub use crate::wal::RecoveryError;
    pub use seqlog_sequence::{Alphabet, ExtendedDomain, SeqId, SeqStore, Sym};
    pub use seqlog_transducer::{DeterminizeCaps, Fst, Network, Transducer};
}
