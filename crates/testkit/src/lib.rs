//! Random *safe* Sequence Datalog cases, plus the differential harness
//! that evaluates them along independent routes.
//!
//! The fragment-sensitivity results around Sequence Datalog (expressiveness
//! depends delicately on which operations — indexing, construction, free
//! variables — a fragment admits) make randomized cross-fragment testing
//! the right safety net for an optimized engine: each generated program
//! composes a few *shapes* drawn from the fragments the evaluator treats
//! differently (delta-driven joins, domain-sensitive clauses, constructive
//! heads, equality literals), and every case is terminating by
//! construction, so `batch ≡ incremental ≡ parallel` is decidable per case.
//!
//! Generation is built on the workspace's `proptest` shim: strategies are
//! deterministic per test name ([`proptest::test_runner::TestRng`]), so a
//! failing case reproduces by running the same test — the seed is pinned by
//! construction. See `tests/fuzz_differential.rs` at the workspace root for
//! the assertions.

use proptest::collection;
use proptest::prop_oneof;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use seqlog_core::eval::interp::FactStore;
use seqlog_core::{Database, Engine, EvalConfig, EvalError, EvalStats};
use std::collections::BTreeMap;
use std::fmt;

/// One generated differential case: a safe program plus base-fact batches.
///
/// All base facts are unary over the feed predicates `r0`/`r1`; the
/// batches model arrival order — a session asserts them one batch at a
/// time, batch evaluation sees their union.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// Program source (terminating by construction).
    pub program: String,
    /// Fact batches in arrival order: `(pred, word)` per fact.
    pub batches: Vec<Vec<(String, String)>>,
}

impl FuzzCase {
    /// All facts of every batch, in arrival order.
    pub fn union_facts(&self) -> impl Iterator<Item = &(String, String)> {
        self.batches.iter().flatten()
    }

    /// Total fact count across batches.
    pub fn fact_count(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program:\n{}", self.program)?;
        for (i, b) in self.batches.iter().enumerate() {
            writeln!(f, "batch {i}: {b:?}")?;
        }
        Ok(())
    }
}

/// Strategy producing [`FuzzCase`]s. Tunables bound the worst case so a
/// few hundred cases stay fast in debug builds.
pub struct CaseStrategy {
    /// Shape instances composed per program (1..=max).
    pub max_shapes: usize,
    /// Fact batches per case (1..=max).
    pub max_batches: usize,
    /// Facts per batch (0..=max; at least one fact overall is guaranteed).
    pub max_facts_per_batch: usize,
    /// Maximum word length (alphabet `{a, b, c}`, empty words included).
    pub max_word_len: usize,
}

impl Default for CaseStrategy {
    fn default() -> Self {
        Self {
            max_shapes: 3,
            max_batches: 4,
            max_facts_per_batch: 3,
            max_word_len: 5,
        }
    }
}

/// The default case strategy.
pub fn cases() -> CaseStrategy {
    CaseStrategy::default()
}

fn word_strategy(max_len: usize) -> impl Strategy<Value = String> {
    collection::vec(prop_oneof!["a", "b", "c"], 0..max_len + 1).prop_map(|v| v.concat())
}

/// Number of distinct program shapes [`CaseStrategy`] draws from.
pub const SHAPE_COUNT: usize = 9;

/// Emit the clauses of shape `kind` (see the module docs), with predicate
/// names suffixed by `u` so composed instances never collide, feeding from
/// base predicate `r{base}`.
fn shape_clauses(kind: usize, u: usize, base: usize, out: &mut String) {
    use std::fmt::Write as _;
    match kind {
        // Three-predicate mutually recursive trimming chain: drives
        // semi-naive deltas across several predicates and many rounds.
        0 => {
            let _ = writeln!(out, "c{u}x0(X) :- r{base}(X).");
            let _ = writeln!(out, "c{u}x1(X[2:end]) :- c{u}x0(X), X != \"\".");
            let _ = writeln!(out, "c{u}x2(X[2:end]) :- c{u}x1(X), X != \"\".");
            let _ = writeln!(out, "c{u}x0(X[2:end]) :- c{u}x2(X), X != \"\".");
        }
        // Suffix enumeration: free index variable ⇒ domain-sensitive.
        1 => {
            let _ = writeln!(out, "suf{u}(X[N:end]) :- r{base}(X).");
        }
        // Prefix enumeration (same fragment, other edge).
        2 => {
            let _ = writeln!(out, "pre{u}(X[1:N]) :- r{base}(X).");
        }
        // Self-join over a trimmed predicate: wide cross-product rounds,
        // the case the parallel match phase shards.
        3 => {
            let _ = writeln!(out, "t{u}(X) :- r{base}(X).");
            let _ = writeln!(out, "t{u}(X[3:end]) :- t{u}(X), X != \"\".");
            let _ = writeln!(out, "pair{u}(X, Y) :- t{u}(X), t{u}(Y).");
        }
        // Stratified construction: concat heads grow the domain without
        // recursion through `++` (Example 5.1's safe pattern).
        4 => {
            let _ = writeln!(out, "dbl{u}(X ++ X) :- r{base}(X).");
            let _ = writeln!(out, "cat{u}(X ++ Y) :- r0(X), r1(Y).");
        }
        // Equality literal with indices bound only by occurrence matching
        // (indices are inclusive: `X[N:N]` is the length-1 window at N):
        // domain-sensitive through its index variable.
        5 => {
            let _ = writeln!(out, "occ{u}(X) :- r{base}(X), X[N:N] = \"a\".");
        }
        // Free head variable: Y ranges over the *whole* extended active
        // domain (Definition 4). The only shape whose old facts derive new
        // tuples purely because the domain grew — it is what forces the
        // resume path to re-run domain-sensitive clauses, and a mutation
        // that skips that refire is caught by this shape alone.
        6 => {
            let _ = writeln!(out, "fr{u}(X, Y) :- r{base}(X).");
        }
        // Ground domain-sensitive clause: empty body, free head variable.
        // Regression shape for the planner ordering bug where body-empty
        // clauses were skipped before the domain-growth refire check.
        7 => {
            let _ = writeln!(out, "gd{u}(X, X) :- true.");
        }
        // Two-predicate mutual recursion with a guard inequality.
        _ => {
            let _ = writeln!(out, "m{u}p(X) :- r{base}(X).");
            let _ = writeln!(out, "m{u}p(X[2:end]) :- m{u}q(X), X != \"\".");
            let _ = writeln!(out, "m{u}q(X) :- m{u}p(X).");
        }
    }
}

impl Strategy for CaseStrategy {
    type Value = FuzzCase;

    fn generate(&self, rng: &mut TestRng) -> FuzzCase {
        let words = word_strategy(self.max_word_len);
        let n_shapes = 1 + (rng.next_u64() as usize) % self.max_shapes;
        let mut program = String::new();
        for u in 0..n_shapes {
            let kind = (rng.next_u64() as usize) % SHAPE_COUNT;
            let base = (rng.next_u64() as usize) % 2;
            shape_clauses(kind, u, base, &mut program);
        }
        let n_batches = 1 + (rng.next_u64() as usize) % self.max_batches;
        let mut batches: Vec<Vec<(String, String)>> = (0..n_batches)
            .map(|_| {
                let n_facts = (rng.next_u64() as usize) % (self.max_facts_per_batch + 1);
                (0..n_facts)
                    .map(|_| {
                        let pred = format!("r{}", rng.next_u64() % 2);
                        (pred, words.generate(rng))
                    })
                    .collect()
            })
            .collect();
        if batches.iter().all(Vec::is_empty) {
            batches[0].push(("r0".to_string(), words.generate(rng)));
        }
        FuzzCase { program, batches }
    }
}

/// The observable result of evaluating a case: either the rendered extents
/// of every predicate (in per-relation insertion order), or the error it
/// failed with. [`Outcome::extents_sorted`] gives the set-level view for
/// cross-route comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Evaluation settled: per-predicate extents and final stats.
    Model {
        /// Rendered tuples per predicate, insertion order.
        extents: BTreeMap<String, Vec<Vec<String>>>,
        /// Final statistics.
        stats: EvalStats,
    },
    /// Evaluation failed (rendered via `Debug` of the error's budget kind,
    /// or `Display` for non-budget errors).
    Failed(String),
}

impl Outcome {
    fn from_error(e: &EvalError) -> Self {
        match e {
            EvalError::Budget { kind, .. } => Outcome::Failed(format!("budget:{kind:?}")),
            other => Outcome::Failed(other.to_string()),
        }
    }

    /// Extents with each relation's tuples sorted — equal across routes
    /// that agree set-wise but not on insertion order (batch vs session).
    pub fn extents_sorted(&self) -> Option<BTreeMap<String, Vec<Vec<String>>>> {
        match self {
            Outcome::Model { extents, .. } => {
                let mut out = extents.clone();
                for v in out.values_mut() {
                    v.sort();
                }
                Some(out)
            }
            Outcome::Failed(_) => None,
        }
    }

    /// The failure label, if the route failed.
    pub fn failure(&self) -> Option<&str> {
        match self {
            Outcome::Failed(s) => Some(s),
            Outcome::Model { .. } => None,
        }
    }
}

fn render_store(e: &Engine, facts: &FactStore) -> BTreeMap<String, Vec<Vec<String>>> {
    facts
        .predicates()
        .map(|pred| {
            let rows = facts
                .relation_named(pred)
                .map(|rel| {
                    rel.iter()
                        .map(|t| t.iter().map(|&id| e.render(id)).collect())
                        .collect()
                })
                .unwrap_or_default();
            (pred.to_string(), rows)
        })
        .collect()
}

/// Evaluate the union of all batches in one shot.
pub fn batch_outcome(case: &FuzzCase, config: &EvalConfig) -> Outcome {
    let mut e = Engine::new();
    let program = e
        .parse_program(&case.program)
        .expect("generated programs parse");
    // The union database, assembled batch-wise (Database::extend_from is
    // the boundary the session route's assert_db mirrors).
    let mut db = Database::new();
    for batch in &case.batches {
        let mut batch_db = Database::new();
        for (pred, word) in batch {
            e.add_fact(&mut batch_db, pred, &[word]);
        }
        db.extend_from(&batch_db);
    }
    match e.evaluate_with(&program, &db, config) {
        Ok(m) => Outcome::Model {
            stats: m.stats,
            extents: render_store(&e, &m.facts),
        },
        Err(err) => Outcome::from_error(&err),
    }
}

/// Evaluate incrementally: open a session, assert one batch at a time with
/// a resume after each. The first failing resume ends the route (sessions
/// poison on error).
pub fn incremental_outcome(case: &FuzzCase, config: &EvalConfig) -> Outcome {
    let mut e = Engine::new();
    let program = e
        .parse_program(&case.program)
        .expect("generated programs parse");
    let mut session = e
        .into_session(&program, *config)
        .expect("generated programs compile");
    for batch in &case.batches {
        for (pred, word) in batch {
            if let Err(err) = session.assert_fact(pred, &[word.as_str()]) {
                return Outcome::from_error(&err);
            }
        }
        if let Err(err) = session.run() {
            return Outcome::from_error(&err);
        }
    }
    let model = session.snapshot();
    let extents = session
        .predicates()
        .map(|pred| (pred.to_string(), session.query(pred)))
        .collect();
    Outcome::Model {
        extents,
        stats: model.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_parse_and_settle() {
        let mut rng = TestRng::from_name("generated_cases_parse_and_settle");
        let strat = cases();
        for _ in 0..32 {
            let case = strat.generate(&mut rng);
            assert!(case.fact_count() >= 1, "{case}");
            let out = batch_outcome(&case, &EvalConfig::default());
            assert!(out.failure().is_none(), "default budgets must fit: {case}");
        }
    }

    #[test]
    fn shapes_cover_all_kinds() {
        // Pin the shape table: each kind emits at least one clause and
        // parses on its own.
        for kind in 0..SHAPE_COUNT {
            let mut src = String::new();
            shape_clauses(kind, 0, 0, &mut src);
            assert!(!src.is_empty());
            let mut e = Engine::new();
            e.parse_program(&src).unwrap_or_else(|err| {
                panic!("shape {kind} must parse: {err}\n{src}");
            });
        }
    }
}
