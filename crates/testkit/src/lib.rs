//! Random *safe* Sequence Datalog cases, plus the differential harness
//! that evaluates them along independent routes.
//!
//! The fragment-sensitivity results around Sequence Datalog (expressiveness
//! depends delicately on which operations — indexing, construction, free
//! variables — a fragment admits) make randomized cross-fragment testing
//! the right safety net for an optimized engine: each generated program
//! composes a few *shapes* drawn from the fragments the evaluator treats
//! differently (delta-driven joins, domain-sensitive clauses, constructive
//! heads, equality literals), and every case is terminating by
//! construction, so `batch ≡ incremental ≡ parallel` is decidable per case.
//!
//! Two case families are generated over the same shape grammar:
//!
//! * [`FuzzCase`] — assert-only batches; oracle: batch ≡ incremental ≡
//!   parallel ([`batch_outcome`] vs [`incremental_outcome`]).
//! * [`InterleavedCase`] — assert/**retract** interleavings; oracle: after
//!   any history, the session equals a fresh batch evaluation of the
//!   *surviving* base facts ([`interleaved_outcome`] vs
//!   [`surviving_batch_outcome`]) — the Delete-and-Rederive correctness
//!   bar, with the ground-domain-sensitive shape (`gd(X, X) :- true.`)
//!   forced in regularly because retraction must shrink the extended
//!   active domain it enumerates.
//!
//! Generation is built on the workspace's `proptest` shim: strategies are
//! deterministic per test name ([`proptest::test_runner::TestRng`]), so a
//! failing case reproduces by running the same test — the seed is pinned by
//! construction. See `tests/fuzz_differential.rs` at the workspace root for
//! the assertions.

use proptest::collection;
use proptest::prop_oneof;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
pub use seqlog_core::analysis::magic::MagicOptions;
pub use seqlog_core::analysis::Bind;
use seqlog_core::eval::interp::FactStore;
pub use seqlog_core::session::DemandAnswer;
use seqlog_core::wal::{read_wal, ReadRecord, WalReadOptions, WalRecord, WAL_FILE, WAL_HEADER_LEN};
use seqlog_core::{
    Database, DurabilityOptions, Engine, EngineSession, EvalConfig, EvalError, EvalStats,
};
use seqlog_sequence::Sym;
use seqlog_transducer::library;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One generated differential case: a safe program plus base-fact batches.
///
/// All base facts are unary over the feed predicates `r0`/`r1`; the
/// batches model arrival order — a session asserts them one batch at a
/// time, batch evaluation sees their union.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// Program source (terminating by construction).
    pub program: String,
    /// Fact batches in arrival order: `(pred, word)` per fact.
    pub batches: Vec<Vec<(String, String)>>,
}

impl FuzzCase {
    /// All facts of every batch, in arrival order.
    pub fn union_facts(&self) -> impl Iterator<Item = &(String, String)> {
        self.batches.iter().flatten()
    }

    /// Total fact count across batches.
    pub fn fact_count(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program:\n{}", self.program)?;
        for (i, b) in self.batches.iter().enumerate() {
            writeln!(f, "batch {i}: {b:?}")?;
        }
        Ok(())
    }
}

/// Strategy producing [`FuzzCase`]s. Tunables bound the worst case so a
/// few hundred cases stay fast in debug builds.
pub struct CaseStrategy {
    /// Shape instances composed per program (1..=max).
    pub max_shapes: usize,
    /// Fact batches per case (1..=max).
    pub max_batches: usize,
    /// Facts per batch (0..=max; at least one fact overall is guaranteed).
    pub max_facts_per_batch: usize,
    /// Maximum word length (alphabet `{a, b, c}`, empty words included).
    pub max_word_len: usize,
}

impl Default for CaseStrategy {
    fn default() -> Self {
        Self {
            max_shapes: 3,
            max_batches: 4,
            max_facts_per_batch: 3,
            max_word_len: 5,
        }
    }
}

/// The default case strategy.
pub fn cases() -> CaseStrategy {
    CaseStrategy::default()
}

fn word_strategy(max_len: usize) -> impl Strategy<Value = String> {
    collection::vec(prop_oneof!["a", "b", "c"], 0..max_len + 1).prop_map(|v| v.concat())
}

/// Number of distinct program shapes [`CaseStrategy`] draws from.
pub const SHAPE_COUNT: usize = 9;

/// The unary head predicate of shape `kind` (instance `u`), when it has
/// one. The interleaving generator occasionally asserts base facts *into*
/// these derived predicates: a fact both asserted and derivable is exactly
/// the case where retraction must distinguish base support from rule
/// support (DRed's re-seed pass).
fn shape_unary_head(kind: usize, u: usize) -> Option<String> {
    match kind {
        0 => Some(format!("c{u}x0")),
        1 => Some(format!("suf{u}")),
        2 => Some(format!("pre{u}")),
        3 => Some(format!("t{u}")),
        5 => Some(format!("occ{u}")),
        8 => Some(format!("m{u}p")),
        _ => None, // dbl/cat construct, fr/gd are binary
    }
}

/// Emit the clauses of shape `kind` (see the module docs), with predicate
/// names suffixed by `u` so composed instances never collide, feeding from
/// base predicate `r{base}`.
fn shape_clauses(kind: usize, u: usize, base: usize, out: &mut String) {
    use std::fmt::Write as _;
    match kind {
        // Three-predicate mutually recursive trimming chain: drives
        // semi-naive deltas across several predicates and many rounds.
        0 => {
            let _ = writeln!(out, "c{u}x0(X) :- r{base}(X).");
            let _ = writeln!(out, "c{u}x1(X[2:end]) :- c{u}x0(X), X != \"\".");
            let _ = writeln!(out, "c{u}x2(X[2:end]) :- c{u}x1(X), X != \"\".");
            let _ = writeln!(out, "c{u}x0(X[2:end]) :- c{u}x2(X), X != \"\".");
        }
        // Suffix enumeration: free index variable ⇒ domain-sensitive.
        1 => {
            let _ = writeln!(out, "suf{u}(X[N:end]) :- r{base}(X).");
        }
        // Prefix enumeration (same fragment, other edge).
        2 => {
            let _ = writeln!(out, "pre{u}(X[1:N]) :- r{base}(X).");
        }
        // Self-join over a trimmed predicate: wide cross-product rounds,
        // the case the parallel match phase shards.
        3 => {
            let _ = writeln!(out, "t{u}(X) :- r{base}(X).");
            let _ = writeln!(out, "t{u}(X[3:end]) :- t{u}(X), X != \"\".");
            let _ = writeln!(out, "pair{u}(X, Y) :- t{u}(X), t{u}(Y).");
        }
        // Stratified construction: concat heads grow the domain without
        // recursion through `++` (Example 5.1's safe pattern).
        4 => {
            let _ = writeln!(out, "dbl{u}(X ++ X) :- r{base}(X).");
            let _ = writeln!(out, "cat{u}(X ++ Y) :- r0(X), r1(Y).");
        }
        // Equality literal with indices bound only by occurrence matching
        // (indices are inclusive: `X[N:N]` is the length-1 window at N):
        // domain-sensitive through its index variable.
        5 => {
            let _ = writeln!(out, "occ{u}(X) :- r{base}(X), X[N:N] = \"a\".");
        }
        // Free head variable: Y ranges over the *whole* extended active
        // domain (Definition 4). The only shape whose old facts derive new
        // tuples purely because the domain grew — it is what forces the
        // resume path to re-run domain-sensitive clauses, and a mutation
        // that skips that refire is caught by this shape alone.
        6 => {
            let _ = writeln!(out, "fr{u}(X, Y) :- r{base}(X).");
        }
        // Ground domain-sensitive clause: empty body, free head variable.
        // Regression shape for the planner ordering bug where body-empty
        // clauses were skipped before the domain-growth refire check.
        7 => {
            let _ = writeln!(out, "gd{u}(X, X) :- true.");
        }
        // Two-predicate mutual recursion with a guard inequality.
        _ => {
            let _ = writeln!(out, "m{u}p(X) :- r{base}(X).");
            let _ = writeln!(out, "m{u}p(X[2:end]) :- m{u}q(X), X != \"\".");
            let _ = writeln!(out, "m{u}q(X) :- m{u}p(X).");
        }
    }
}

impl Strategy for CaseStrategy {
    type Value = FuzzCase;

    fn generate(&self, rng: &mut TestRng) -> FuzzCase {
        let words = word_strategy(self.max_word_len);
        let n_shapes = 1 + (rng.next_u64() as usize) % self.max_shapes;
        let mut program = String::new();
        for u in 0..n_shapes {
            let kind = (rng.next_u64() as usize) % SHAPE_COUNT;
            let base = (rng.next_u64() as usize) % 2;
            shape_clauses(kind, u, base, &mut program);
        }
        let n_batches = 1 + (rng.next_u64() as usize) % self.max_batches;
        let mut batches: Vec<Vec<(String, String)>> = (0..n_batches)
            .map(|_| {
                let n_facts = (rng.next_u64() as usize) % (self.max_facts_per_batch + 1);
                (0..n_facts)
                    .map(|_| {
                        let pred = format!("r{}", rng.next_u64() % 2);
                        (pred, words.generate(rng))
                    })
                    .collect()
            })
            .collect();
        if batches.iter().all(Vec::is_empty) {
            batches[0].push(("r0".to_string(), words.generate(rng)));
        }
        FuzzCase { program, batches }
    }
}

/// One session operation of an [`InterleavedCase`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// `assert_fact(pred, [word])`.
    Assert {
        /// Base predicate (`r0`/`r1`).
        pred: String,
        /// Unary argument.
        word: String,
    },
    /// `retract_fact(pred, [word])` — may be a no-op (never asserted, or
    /// already retracted), which is part of the surface under test.
    Retract {
        /// Base predicate.
        pred: String,
        /// Unary argument.
        word: String,
    },
}

/// A generated assert/retract interleaving over a safe program: the
/// non-monotone counterpart of [`FuzzCase`]. The session route applies each
/// step's ops in order with a [`EngineSession::run`]-equivalent settle after
/// the step; the oracle route batch-evaluates the *surviving* base facts.
///
/// [`EngineSession::run`]: seqlog_core::session::EngineSession::run
#[derive(Clone, Debug)]
pub struct InterleavedCase {
    /// Program source (terminating by construction).
    pub program: String,
    /// Operation batches in arrival order.
    pub steps: Vec<Vec<Op>>,
}

impl InterleavedCase {
    /// The surviving base facts under set semantics (asserts dedupe, a
    /// retract removes the fact when present), in first-assert order.
    pub fn surviving_facts(&self) -> Vec<(String, String)> {
        let mut order: Vec<(String, String)> = Vec::new();
        let mut live: std::collections::BTreeSet<(String, String)> = Default::default();
        for op in self.steps.iter().flatten() {
            match op {
                Op::Assert { pred, word } => {
                    let key = (pred.clone(), word.clone());
                    if live.insert(key.clone()) && !order.contains(&key) {
                        order.push(key);
                    }
                }
                Op::Retract { pred, word } => {
                    live.remove(&(pred.clone(), word.clone()));
                }
            }
        }
        order.retain(|k| live.contains(k));
        order
    }

    /// Total number of operations.
    pub fn op_count(&self) -> usize {
        self.steps.iter().map(Vec::len).sum()
    }

    /// True when some op retracts a word that was asserted earlier (the
    /// interesting, effective retraction — as opposed to no-op retracts).
    pub fn has_effective_retract(&self) -> bool {
        let mut live: std::collections::BTreeSet<(&str, &str)> = Default::default();
        for op in self.steps.iter().flatten() {
            match op {
                Op::Assert { pred, word } => {
                    live.insert((pred, word));
                }
                Op::Retract { pred, word } => {
                    if live.remove(&(pred.as_str(), word.as_str())) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

impl fmt::Display for InterleavedCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program:\n{}", self.program)?;
        for (i, step) in self.steps.iter().enumerate() {
            write!(f, "step {i}:")?;
            for op in step {
                match op {
                    Op::Assert { pred, word } => write!(f, " +{pred}({word:?})")?,
                    Op::Retract { pred, word } => write!(f, " -{pred}({word:?})")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Strategy producing [`InterleavedCase`]s. Roughly a third of the ops are
/// retractions, most of which target previously asserted facts (the rest
/// exercise the no-op path). With `force_gd`, every program includes the
/// ground-domain-sensitive shape `gd(X, X) :- true.` — the domain-shrink
/// trap retraction must handle; without it, every third case still does.
pub struct InterleavedCaseStrategy {
    /// Shape instances composed per program (1..=max).
    pub max_shapes: usize,
    /// Operation batches per case (1..=max).
    pub max_steps: usize,
    /// Ops per batch (0..=max; at least one assert overall is guaranteed).
    pub max_ops_per_step: usize,
    /// Maximum word length (alphabet `{a, b, c}`, empty words included).
    pub max_word_len: usize,
    /// Always include the ground-domain-sensitive shape.
    pub force_gd: bool,
}

impl Default for InterleavedCaseStrategy {
    fn default() -> Self {
        Self {
            max_shapes: 3,
            max_steps: 4,
            max_ops_per_step: 4,
            max_word_len: 5,
            force_gd: false,
        }
    }
}

/// The default interleaved-case strategy.
pub fn interleaved_cases() -> InterleavedCaseStrategy {
    InterleavedCaseStrategy::default()
}

/// [`interleaved_cases`] with the ground-domain-sensitive shape forced into
/// every program (guaranteed domain-shrinkage coverage).
pub fn interleaved_cases_with_gd() -> InterleavedCaseStrategy {
    InterleavedCaseStrategy {
        force_gd: true,
        ..InterleavedCaseStrategy::default()
    }
}

impl Strategy for InterleavedCaseStrategy {
    type Value = InterleavedCase;

    fn generate(&self, rng: &mut TestRng) -> InterleavedCase {
        let words = word_strategy(self.max_word_len);
        let n_shapes = 1 + (rng.next_u64() as usize) % self.max_shapes;
        let mut program = String::new();
        let mut has_gd = false;
        // Feed predicates, plus the unary *derived* predicates of the
        // chosen shapes: asserting into a derived predicate makes facts
        // that are both base and rule-supported, the re-seed-sensitive
        // class of retraction.
        let mut assertable: Vec<String> = vec!["r0".to_string(), "r1".to_string()];
        for u in 0..n_shapes {
            let kind = (rng.next_u64() as usize) % SHAPE_COUNT;
            has_gd |= kind == 7;
            let base = (rng.next_u64() as usize) % 2;
            shape_clauses(kind, u, base, &mut program);
            assertable.extend(shape_unary_head(kind, u));
        }
        if !has_gd && (self.force_gd || rng.next_u64().is_multiple_of(3)) {
            shape_clauses(7, n_shapes, 0, &mut program);
        }
        let mut pool: Vec<(String, String)> = Vec::new();
        let n_steps = 1 + (rng.next_u64() as usize) % self.max_steps;
        let mut steps: Vec<Vec<Op>> = (0..n_steps)
            .map(|_| {
                let n_ops = (rng.next_u64() as usize) % (self.max_ops_per_step + 1);
                (0..n_ops)
                    .map(|_| {
                        let pick_pred = |rng: &mut TestRng, assertable: &[String]| {
                            if assertable.len() > 2 && rng.next_u64().is_multiple_of(5) {
                                assertable[2 + (rng.next_u64() as usize) % (assertable.len() - 2)]
                                    .clone()
                            } else {
                                format!("r{}", rng.next_u64() % 2)
                            }
                        };
                        let retract = !pool.is_empty() && rng.next_u64().is_multiple_of(3);
                        if retract {
                            if rng.next_u64().is_multiple_of(4) {
                                // A (most likely) never-asserted fact: the
                                // no-op retraction path.
                                Op::Retract {
                                    pred: pick_pred(rng, &assertable),
                                    word: words.generate(rng),
                                }
                            } else {
                                let (pred, word) =
                                    pool[(rng.next_u64() as usize) % pool.len()].clone();
                                Op::Retract { pred, word }
                            }
                        } else {
                            let pred = pick_pred(rng, &assertable);
                            let word = words.generate(rng);
                            pool.push((pred.clone(), word.clone()));
                            Op::Assert { pred, word }
                        }
                    })
                    .collect()
            })
            .collect();
        if pool.is_empty() {
            steps[0].push(Op::Assert {
                pred: "r0".to_string(),
                word: words.generate(rng),
            });
        }
        InterleavedCase { program, steps }
    }
}

/// The observable result of evaluating a case: either the rendered extents
/// of every predicate (in per-relation insertion order), or the error it
/// failed with. [`Outcome::extents_sorted`] gives the set-level view for
/// cross-route comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Evaluation settled: per-predicate extents and final stats.
    Model {
        /// Rendered tuples per predicate, insertion order.
        extents: BTreeMap<String, Vec<Vec<String>>>,
        /// Final statistics.
        stats: EvalStats,
    },
    /// Evaluation failed (rendered via `Debug` of the error's budget kind,
    /// or `Display` for non-budget errors).
    Failed(String),
}

/// Relation extents keyed by predicate name, rendered back to strings.
pub type Extents = BTreeMap<String, Vec<Vec<String>>>;

impl Outcome {
    fn from_error(e: &EvalError) -> Self {
        match e {
            EvalError::Budget { kind, .. } => Outcome::Failed(format!("budget:{kind:?}")),
            other => Outcome::Failed(other.to_string()),
        }
    }

    /// Extents with each relation's tuples sorted — equal across routes
    /// that agree set-wise but not on insertion order (batch vs session).
    pub fn extents_sorted(&self) -> Option<Extents> {
        match self {
            Outcome::Model { extents, .. } => {
                let mut out = extents.clone();
                for v in out.values_mut() {
                    v.sort();
                }
                Some(out)
            }
            Outcome::Failed(_) => None,
        }
    }

    /// [`Outcome::extents_sorted`] with empty relations dropped. The
    /// session route keeps a (now empty) relation for a predicate whose
    /// last fact was retracted; the fresh-batch oracle never saw that
    /// predicate at all. Set-level equality must ignore the difference.
    pub fn extents_sorted_nonempty(&self) -> Option<Extents> {
        self.extents_sorted().map(|mut out| {
            out.retain(|_, v| !v.is_empty());
            out
        })
    }

    /// The bit-for-bit view for recovery comparison: extents in
    /// per-relation **insertion order** plus the exact stats, with empty
    /// relations dropped (a budget-refused assert may intern a predicate it
    /// never populates; the replayed route skips the aborted record and
    /// never sees the name — an unobservable difference).
    pub fn bitwise_view(&self) -> Option<(Extents, EvalStats)> {
        match self {
            Outcome::Model { extents, stats } => {
                let mut out = extents.clone();
                out.retain(|_, v| !v.is_empty());
                Some((out, *stats))
            }
            Outcome::Failed(_) => None,
        }
    }

    /// The failure label, if the route failed.
    pub fn failure(&self) -> Option<&str> {
        match self {
            Outcome::Failed(s) => Some(s),
            Outcome::Model { .. } => None,
        }
    }
}

fn render_store(e: &Engine, facts: &FactStore) -> BTreeMap<String, Vec<Vec<String>>> {
    facts
        .predicates()
        .map(|pred| {
            let rows = facts
                .relation_named(pred)
                .map(|rel| {
                    rel.iter()
                        .map(|t| t.iter().map(|&id| e.render(id)).collect())
                        .collect()
                })
                .unwrap_or_default();
            (pred.to_string(), rows)
        })
        .collect()
}

/// Evaluate the union of all batches in one shot.
pub fn batch_outcome(case: &FuzzCase, config: &EvalConfig) -> Outcome {
    batch_outcome_in(Engine::new(), case, config)
}

/// [`batch_outcome`] with the standard chain machines
/// ([`register_chain_machines`]) registered, for cases extended by
/// [`with_chain_clauses`].
pub fn chained_batch_outcome(case: &FuzzCase, config: &EvalConfig) -> Outcome {
    let mut e = Engine::new();
    register_chain_machines(&mut e);
    batch_outcome_in(e, case, config)
}

fn batch_outcome_in(mut e: Engine, case: &FuzzCase, config: &EvalConfig) -> Outcome {
    let program = e
        .parse_program(&case.program)
        .expect("generated programs parse");
    // The union database, assembled batch-wise (Database::extend_from is
    // the boundary the session route's assert_db mirrors).
    let mut db = Database::new();
    for batch in &case.batches {
        let mut batch_db = Database::new();
        for (pred, word) in batch {
            e.add_fact(&mut batch_db, pred, &[word]);
        }
        db.extend_from(&batch_db);
    }
    match e.evaluate_with(&program, &db, config) {
        Ok(m) => Outcome::Model {
            stats: m.stats,
            extents: render_store(&e, &m.facts),
        },
        Err(err) => Outcome::from_error(&err),
    }
}

/// Evaluate incrementally: open a session, assert one batch at a time with
/// a resume after each. The first failing resume ends the route (sessions
/// poison on error).
pub fn incremental_outcome(case: &FuzzCase, config: &EvalConfig) -> Outcome {
    let mut e = Engine::new();
    let program = e
        .parse_program(&case.program)
        .expect("generated programs parse");
    let mut session = e
        .into_session(&program, *config)
        .expect("generated programs compile");
    for batch in &case.batches {
        for (pred, word) in batch {
            if let Err(err) = session.assert_fact(pred, &[word.as_str()]) {
                return Outcome::from_error(&err);
            }
        }
        if let Err(err) = session.run() {
            return Outcome::from_error(&err);
        }
    }
    let model = session.snapshot();
    let extents = session
        .predicates()
        .map(|pred| (pred.to_string(), session.query(pred)))
        .collect();
    Outcome::Model {
        extents,
        stats: model.stats,
    }
}

/// Session route for an interleaved case: apply each step's ops in order
/// (retractions settle eagerly), then resume the fixpoint, and read the
/// final extents. The first failing op or resume ends the route (sessions
/// poison on evaluation errors; budget-refused asserts are reported the
/// same way for cross-route comparison).
pub fn interleaved_outcome(case: &InterleavedCase, config: &EvalConfig) -> Outcome {
    let mut e = Engine::new();
    let program = e
        .parse_program(&case.program)
        .expect("generated programs parse");
    let mut session = e
        .into_session(&program, *config)
        .expect("generated programs compile");
    for step in &case.steps {
        for op in step {
            let result = match op {
                Op::Assert { pred, word } => session.assert_fact(pred, &[word]).map(|_| ()),
                Op::Retract { pred, word } => session.retract_fact(pred, &[word]).map(|_| ()),
            };
            if let Err(err) = result {
                return Outcome::from_error(&err);
            }
        }
        if let Err(err) = session.run() {
            return Outcome::from_error(&err);
        }
    }
    let model = session.snapshot();
    let extents = session
        .predicates()
        .map(|pred| (pred.to_string(), session.query(pred)))
        .collect();
    Outcome::Model {
        extents,
        stats: model.stats,
    }
}

/// The retraction oracle: batch-evaluate the case's *surviving* base facts
/// from scratch. [`interleaved_outcome`] must agree with this extent-wise
/// (Definition 4 / Theorem 2: the least fixpoint is a function of the
/// database, however the database came to be).
pub fn surviving_batch_outcome(case: &InterleavedCase, config: &EvalConfig) -> Outcome {
    let mut e = Engine::new();
    let program = e
        .parse_program(&case.program)
        .expect("generated programs parse");
    let mut db = Database::new();
    for (pred, word) in case.surviving_facts() {
        e.add_fact(&mut db, &pred, &[&word]);
    }
    match e.evaluate_with(&program, &db, config) {
        Ok(m) => Outcome::Model {
            stats: m.stats,
            extents: render_store(&e, &m.facts),
        },
        Err(err) => Outcome::from_error(&err),
    }
}

// ---------------------------------------------------------------------------
// Crash-injection harness for durable sessions
// ---------------------------------------------------------------------------

/// A self-cleaning temporary directory (std-only `tempfile` stand-in).
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory under the OS temp dir, unique per process
    /// and call.
    pub fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("seqlog-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// A snapshot file observed during a [`durable_run`]: its name, its full
/// byte image, and the log length when it first appeared. Keeping the bytes
/// (not just the path) lets [`crash_at`] materialize the files a crash at
/// any earlier offset would have found, even ones the live run later pruned.
pub struct SnapshotMark {
    /// File name (`snap-….bin`).
    pub name: String,
    /// Complete file contents when first observed.
    pub bytes: Vec<u8>,
    /// `wal_len()` at the moment the file was first observed.
    pub wal_len: u64,
}

/// The trace of one durable execution of an [`InterleavedCase`]: the live
/// directory, the log length after every session call (the record-boundary
/// kill points), every snapshot ever written, and the final outcome.
pub struct DurableRun {
    /// The live durability directory (kept alive by this struct).
    pub dir: TempDir,
    /// `wal_len()` after each assert/retract/run call, in order.
    pub boundaries: Vec<u64>,
    /// All snapshots observed, in first-appearance order.
    pub snapshots: Vec<SnapshotMark>,
    /// Final log length.
    pub final_len: u64,
    /// The live route's outcome (for comparison against recovery at the
    /// final offset).
    pub outcome: Outcome,
}

fn observe_snapshots(dir: &Path, wal_len: u64, seen: &mut Vec<SnapshotMark>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("snap-") || !name.ends_with(".bin") {
            continue;
        }
        if seen.iter().any(|m| m.name == name) {
            continue;
        }
        let Ok(bytes) = fs::read(entry.path()) else {
            continue;
        };
        seen.push(SnapshotMark {
            name,
            bytes,
            wal_len,
        });
    }
}

/// Execute `case` in a durable session, recording record boundaries and
/// snapshot appearances after every call. Budget-refused asserts/retracts do
/// **not** end the run (they leave an `Abort` pair in the log — coverage for
/// the compensation path); a poisoning failure does, and the poisoned log
/// tail then becomes a recovery input like any other.
pub fn durable_run(
    case: &InterleavedCase,
    config: &EvalConfig,
    opts: &DurabilityOptions,
) -> DurableRun {
    let dir = TempDir::new("run");
    let mut e = Engine::new();
    let program = e
        .parse_program(&case.program)
        .expect("generated programs parse");
    let mut session = e
        .into_session(&program, *config)
        .expect("generated programs compile");
    session
        .make_durable(dir.path(), opts.clone())
        .expect("attach durability to a fresh dir");
    let mut boundaries = Vec::new();
    let mut snapshots = Vec::new();
    let mark = |s: &EngineSession, b: &mut Vec<u64>, snaps: &mut Vec<SnapshotMark>| {
        let len = s.wal_len().expect("session is durable");
        b.push(len);
        observe_snapshots(dir.path(), len, snaps);
    };
    mark(&session, &mut boundaries, &mut snapshots);
    let mut outcome = None;
    'steps: for step in &case.steps {
        for op in step {
            let result = match op {
                Op::Assert { pred, word } => session.assert_fact(pred, &[word]).map(|_| ()),
                Op::Retract { pred, word } => session.retract_fact(pred, &[word]).map(|_| ()),
            };
            mark(&session, &mut boundaries, &mut snapshots);
            if let Err(err) = result {
                if session.is_poisoned() {
                    outcome = Some(Outcome::from_error(&err));
                    break 'steps;
                }
            }
        }
        if let Err(err) = session.run() {
            mark(&session, &mut boundaries, &mut snapshots);
            outcome = Some(Outcome::from_error(&err));
            break 'steps;
        }
        mark(&session, &mut boundaries, &mut snapshots);
    }
    let final_len = session.wal_len().expect("session is durable");
    let outcome = outcome.unwrap_or_else(|| session_outcome(&session));
    DurableRun {
        dir,
        boundaries,
        snapshots,
        final_len,
        outcome,
    }
}

/// Materialize the durability directory a crash at log offset `offset`
/// would leave behind: the log truncated to `offset` and exactly the
/// snapshots that existed by then (snapshots are written atomically, so a
/// crash never leaves a partial one).
pub fn crash_at(run: &DurableRun, offset: u64) -> TempDir {
    let crashed = TempDir::new("crash");
    let bytes = fs::read(run.dir.path().join(WAL_FILE)).expect("read live wal");
    let cut = offset.min(bytes.len() as u64) as usize;
    fs::write(crashed.path().join(WAL_FILE), &bytes[..cut]).expect("write crashed wal");
    for mark in &run.snapshots {
        if mark.wal_len <= offset {
            fs::write(crashed.path().join(&mark.name), &mark.bytes).expect("write snapshot");
        }
    }
    crashed
}

/// The deterministic kill points for a run: every record boundary, plus the
/// midpoint of every inter-boundary gap (mid-record torn tails), all at or
/// past the log header (an offset inside the header models a crash during
/// [`EngineSession::make_durable`] itself and is tested separately).
pub fn kill_offsets(run: &DurableRun) -> Vec<u64> {
    let mut offsets = Vec::new();
    for (i, &b) in run.boundaries.iter().enumerate() {
        offsets.push(b);
        if let Some(&next) = run.boundaries.get(i + 1) {
            if next > b + 1 {
                offsets.push(b + (next - b) / 2);
            }
        }
    }
    offsets.push(run.final_len);
    offsets.retain(|&o| o >= WAL_HEADER_LEN);
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

/// Recover a session from a (possibly crashed) durability directory.
pub fn recover_session(
    program_src: &str,
    dir: &Path,
    config: &EvalConfig,
    opts: &DurabilityOptions,
) -> Result<EngineSession, EvalError> {
    let mut e = Engine::new();
    let program = e
        .parse_program(program_src)
        .expect("generated programs parse");
    EngineSession::open_durable(e, &program, *config, dir, opts.clone())
}

/// The session's observable state as an [`Outcome`] — insertion-order
/// extents per predicate, plus cumulative stats.
pub fn session_outcome(session: &EngineSession) -> Outcome {
    let extents = session
        .predicates()
        .map(|pred| (pred.to_string(), session.query(pred)))
        .collect();
    Outcome::Model {
        extents,
        stats: session.stats(),
    }
}

/// The *effective* records of a log: aborted pairs removed, `Abort`
/// markers dropped.
fn effective_records(records: &[ReadRecord]) -> Vec<&ReadRecord> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < records.len() {
        let r = &records[i];
        let aborted = records
            .get(i + 1)
            .is_some_and(|n| matches!(n.record, WalRecord::Abort));
        match &r.record {
            WalRecord::Abort => {}
            _ if aborted => {
                i += 2;
                continue;
            }
            _ => out.push(r),
        }
        i += 1;
    }
    out
}

fn logged_word(names: &[Vec<String>]) -> Vec<String> {
    names.iter().map(|arg| arg.concat()).collect()
}

/// Replay a directory's log through a **fresh, in-memory** session — the
/// bit-for-bit oracle for recovery: the recovered session must equal this
/// one in extents (insertion order, empty relations ignored: aborted
/// asserts may leave an interned-but-empty predicate behind) and stats.
pub fn wal_replay_outcome(program_src: &str, dir: &Path, config: &EvalConfig) -> Outcome {
    let contents = read_wal(&dir.join(WAL_FILE), &WalReadOptions::default())
        .expect("recovered directories hold a readable log");
    assert_eq!(
        contents.base_index, 0,
        "the fresh-replay oracle needs the full history (uncompacted log)"
    );
    let mut e = Engine::new();
    let program = e
        .parse_program(program_src)
        .expect("generated programs parse");
    let mut session = e
        .into_session(&program, *config)
        .expect("generated programs compile");
    for r in effective_records(&contents.records) {
        let result = match &r.record {
            WalRecord::AssertBatch(facts) => {
                let mut err = None;
                for f in facts {
                    let word = logged_word(&f.args);
                    let args: Vec<&str> = word.iter().map(String::as_str).collect();
                    if let Err(e) = session.assert_fact(&f.pred, &args) {
                        err = Some(e);
                        break;
                    }
                }
                match err {
                    None => Ok(()),
                    Some(e) => Err(e),
                }
            }
            WalRecord::RetractBatch(facts) => {
                let mut err = None;
                for f in facts {
                    let word = logged_word(&f.args);
                    let args: Vec<&str> = word.iter().map(String::as_str).collect();
                    if let Err(e) = session.retract_fact(&f.pred, &args) {
                        err = Some(e);
                        break;
                    }
                }
                match err {
                    None => Ok(()),
                    Some(e) => Err(e),
                }
            }
            WalRecord::Run => session.run().map(|_| ()),
            WalRecord::Abort => unreachable!("effective_records drops aborts"),
        };
        if let Err(err) = result {
            return Outcome::from_error(&err);
        }
    }
    session_outcome(&session)
}

/// The surviving base facts recorded in a directory's log (set semantics
/// over the effective assert/retract records), in first-assert order — the
/// input for the fresh-batch-evaluation oracle.
pub fn wal_surviving_facts(dir: &Path) -> Vec<(String, Vec<String>)> {
    let contents = read_wal(&dir.join(WAL_FILE), &WalReadOptions::default())
        .expect("recovered directories hold a readable log");
    let mut order: Vec<(String, Vec<String>)> = Vec::new();
    let mut live: std::collections::BTreeSet<(String, Vec<String>)> = Default::default();
    for r in effective_records(&contents.records) {
        match &r.record {
            WalRecord::AssertBatch(facts) => {
                for f in facts {
                    let key = (f.pred.clone(), logged_word(&f.args));
                    if live.insert(key.clone()) && !order.contains(&key) {
                        order.push(key);
                    }
                }
            }
            WalRecord::RetractBatch(facts) => {
                for f in facts {
                    live.remove(&(f.pred.clone(), logged_word(&f.args)));
                }
            }
            _ => {}
        }
    }
    order.retain(|k| live.contains(k));
    order
}

/// Batch-evaluate the log's surviving base facts from scratch: the
/// Definition 4 oracle for a recovered-then-settled session (the least
/// fixpoint is a function of the database, however it was reached —
/// crashes and recoveries included).
pub fn wal_surviving_batch_outcome(program_src: &str, dir: &Path, config: &EvalConfig) -> Outcome {
    let mut e = Engine::new();
    let program = e
        .parse_program(program_src)
        .expect("generated programs parse");
    let mut db = Database::new();
    for (pred, args) in wal_surviving_facts(dir) {
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        e.add_fact(&mut db, &pred, &refs);
    }
    match e.evaluate_with(&program, &db, config) {
        Ok(m) => Outcome::Model {
            stats: m.stats,
            extents: render_store(&e, &m.facts),
        },
        Err(err) => Outcome::from_error(&err),
    }
}

// ---------------------------------------------------------------------------
// Demand-driven (bound-argument) query harness
// ---------------------------------------------------------------------------

/// A demand probe pattern: `Some(word)` binds the position, `None` leaves
/// it free. String-level so probes can be generated from rendered extents.
pub type BoundPattern = Vec<Option<String>>;

fn as_binds(pattern: &[Option<String>]) -> Vec<Bind<'_>> {
    pattern
        .iter()
        .map(|p| match p {
            Some(w) => Bind::Bound(w),
            None => Bind::Free,
        })
        .collect()
}

/// The demand oracle: the batch extent of `pred`, filtered down to the
/// tuples matching every bound position, sorted and deduplicated —
/// exactly what [`EngineSession::query_bound`] promises to return.
pub fn filtered_extent(
    extents: &Extents,
    pred: &str,
    pattern: &[Option<String>],
) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = extents
        .get(pred)
        .map(|rows| {
            rows.iter()
                .filter(|t| {
                    t.len() == pattern.len()
                        && pattern
                            .iter()
                            .zip(t.iter())
                            .all(|(b, v)| b.as_ref().is_none_or(|b| b == v))
                })
                .cloned()
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out.dedup();
    out
}

/// Every (pred, pattern) probe a case's batch model offers at arity ≤ 3:
/// for each populated predicate, all 2^arity bound/free masks with bound
/// values drawn from one of its tuples (so every adornment is exercised
/// with at least one hit), plus an all-bound miss probe over a word the
/// generator's alphabet can never derive.
pub fn demand_probes(extents: &Extents) -> Vec<(String, BoundPattern)> {
    let mut probes = Vec::new();
    for (pred, rows) in extents {
        let Some(sample) = rows.last() else { continue };
        let arity = sample.len();
        if arity == 0 || arity > 3 {
            continue;
        }
        for mask in 0..(1usize << arity) {
            let pattern: BoundPattern = (0..arity)
                .map(|i| (mask >> i & 1 == 1).then(|| sample[i].clone()))
                .collect();
            probes.push((pred.clone(), pattern));
        }
        probes.push((pred.clone(), vec![Some("zq".to_string()); arity]));
    }
    probes
}

/// `query_bound` along the session route: assert every batch (optionally
/// settling the session first — the unsettled variant makes the scratch
/// evaluation derive everything itself), then issue the instrumented
/// query. Failures are rendered like [`Outcome::Failed`] labels.
pub fn demand_outcome(
    case: &FuzzCase,
    config: &EvalConfig,
    pred: &str,
    pattern: &[Option<String>],
    settle: bool,
    opts: &MagicOptions,
) -> Result<DemandAnswer, String> {
    let mut e = Engine::new();
    let program = e
        .parse_program(&case.program)
        .expect("generated programs parse");
    let mut session = e
        .into_session(&program, *config)
        .expect("generated programs compile");
    for (p, word) in case.union_facts() {
        session
            .assert_fact(p, &[word.as_str()])
            .map_err(|err| Outcome::from_error(&err).failure().unwrap().to_string())?;
    }
    if settle {
        session
            .run()
            .map_err(|err| Outcome::from_error(&err).failure().unwrap().to_string())?;
    }
    session
        .query_bound_instrumented(pred, &as_binds(pattern), opts)
        .map_err(|err| Outcome::from_error(&err).failure().unwrap().to_string())
}

/// Register the standard chain machines `m1`/`m2`/`m3` — functional
/// 1-state letter mappers over `a`/`b`/`c` — used by the fusion
/// differential ([`with_chain_clauses`] / [`chained_batch_outcome`]).
/// `m1` is a rotation, `m2` collapses, `m3` swaps: composed in any order
/// they do not commute, so a swapped-composition mutant diverges.
pub fn register_chain_machines(e: &mut Engine) {
    let s: Vec<Sym> = "abc".chars().map(|c| e.alphabet.intern_char(c)).collect();
    let m1 = library::mapper(
        &mut e.alphabet,
        "m1",
        &[(s[0], s[1]), (s[1], s[2]), (s[2], s[0])],
    );
    let m2 = library::mapper(
        &mut e.alphabet,
        "m2",
        &[(s[0], s[0]), (s[1], s[0]), (s[2], s[1])],
    );
    let m3 = library::mapper(
        &mut e.alphabet,
        "m3",
        &[(s[0], s[2]), (s[1], s[1]), (s[2], s[0])],
    );
    e.registry.register("m1", m1);
    e.registry.register("m2", m2);
    e.registry.register("m3", m3);
}

/// Extend a generated case with transducer-chain clauses over both base
/// predicates: a 2-machine and a 3-machine nesting. Evaluating the result
/// (via [`chained_batch_outcome`]) with fusion on and off is the
/// differential oracle for the compile-time fusion pass.
pub fn with_chain_clauses(mut case: FuzzCase) -> FuzzCase {
    case.program
        .push_str("fzc0(@m1(@m2(X))) :- r0(X).\nfzc1(@m3(@m2(@m1(X)))) :- r1(X).\n");
    case
}

/// Strategy producing random small [`Fst`]s over a symbol universe — the
/// input machines of the transducer-algebra property suite
/// (`crates/transducer/tests/algebra.rs`). Machines may be
/// nondeterministic, carry unreachable or stuck states, and emit 0–2
/// symbols per arc; at least one state is final, so the relation is
/// non-trivial for some input.
pub struct FstStrategy {
    universe: Vec<Sym>,
    max_states: usize,
    max_arcs_per_state: usize,
    max_out_len: usize,
}

/// The default [`FstStrategy`] over `universe`.
pub fn fsts(universe: Vec<Sym>) -> FstStrategy {
    FstStrategy {
        universe,
        max_states: 4,
        max_arcs_per_state: 3,
        max_out_len: 2,
    }
}

impl FstStrategy {
    fn word(&self, rng: &mut TestRng) -> Vec<Sym> {
        let len = (rng.next_u64() as usize) % (self.max_out_len + 1);
        (0..len)
            .map(|_| self.universe[(rng.next_u64() as usize) % self.universe.len()])
            .collect()
    }
}

impl Strategy for FstStrategy {
    type Value = seqlog_transducer::Fst;

    fn generate(&self, rng: &mut TestRng) -> seqlog_transducer::Fst {
        let n = 1 + (rng.next_u64() as usize) % self.max_states;
        let mut f = seqlog_transducer::Fst::new("rand", n);
        for q in 0..n as u32 {
            let n_arcs = (rng.next_u64() as usize) % (self.max_arcs_per_state + 1);
            for _ in 0..n_arcs {
                let input = self.universe[(rng.next_u64() as usize) % self.universe.len()];
                let output = self.word(rng);
                let next = (rng.next_u64() % n as u64) as u32;
                f.add_arc(q, input, output, next);
            }
            if rng.next_u64().is_multiple_of(3) {
                let out = self.word(rng);
                f.set_final(q, out);
            }
        }
        if (0..n as u32).all(|q| f.finals_of(q).is_empty()) {
            f.set_final(0, Vec::new());
        }
        f.normalize();
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_parse_and_settle() {
        let mut rng = TestRng::from_name("generated_cases_parse_and_settle");
        let strat = cases();
        for _ in 0..32 {
            let case = strat.generate(&mut rng);
            assert!(case.fact_count() >= 1, "{case}");
            let out = batch_outcome(&case, &EvalConfig::default());
            assert!(out.failure().is_none(), "default budgets must fit: {case}");
        }
    }

    #[test]
    fn interleaved_cases_generate_effective_retractions() {
        let mut rng = TestRng::from_name("interleaved_cases_generate_effective_retractions");
        let strat = interleaved_cases_with_gd();
        let mut effective = 0usize;
        let mut noop_retracts = 0usize;
        for _ in 0..64 {
            let case = strat.generate(&mut rng);
            assert!(
                case.program.contains("gd"),
                "force_gd must include the ground-domain-sensitive shape:\n{case}"
            );
            assert!(!case.surviving_facts().is_empty() || case.op_count() > 0);
            effective += usize::from(case.has_effective_retract());
            noop_retracts += case
                .steps
                .iter()
                .flatten()
                .filter(|op| matches!(op, Op::Retract { .. }))
                .count();
        }
        assert!(
            effective >= 16,
            "only {effective}/64 cases retract an asserted fact — generator too weak"
        );
        assert!(noop_retracts > 0, "retract ops must occur at all");
    }

    #[test]
    fn surviving_facts_apply_set_semantics() {
        let op = |retract: bool, pred: &str, word: &str| {
            if retract {
                Op::Retract {
                    pred: pred.into(),
                    word: word.into(),
                }
            } else {
                Op::Assert {
                    pred: pred.into(),
                    word: word.into(),
                }
            }
        };
        let case = InterleavedCase {
            program: "t0(X) :- r0(X).\n".into(),
            steps: vec![
                vec![
                    op(false, "r0", "a"),
                    op(false, "r0", "b"),
                    op(false, "r0", "a"),
                ],
                vec![op(true, "r0", "a"), op(true, "r1", "zz")], // r1(zz): no-op
                vec![op(false, "r0", "a"), op(true, "r0", "b")],
            ],
        };
        assert!(case.has_effective_retract());
        assert_eq!(
            case.surviving_facts(),
            vec![("r0".to_string(), "a".to_string())],
            "assert/retract/re-assert leaves the fact live; b stays dead"
        );
    }

    #[test]
    fn interleaved_routes_agree_on_a_pinned_case() {
        // One deterministic domain-shrinking case, checked without the
        // fuzz harness: gd(X, X) ranges over the whole extended domain, so
        // retracting "ab" must drop its windows from gd.
        let mk = |pred: &str, word: &str, retract: bool| {
            if retract {
                Op::Retract {
                    pred: pred.into(),
                    word: word.into(),
                }
            } else {
                Op::Assert {
                    pred: pred.into(),
                    word: word.into(),
                }
            }
        };
        let case = InterleavedCase {
            program: "gd0(X, X) :- true.\nsuf0(X[N:end]) :- r0(X).\n".into(),
            steps: vec![
                vec![mk("r0", "ab", false), mk("r0", "c", false)],
                vec![mk("r0", "ab", true)],
            ],
        };
        let config = EvalConfig::default();
        let oracle = surviving_batch_outcome(&case, &config)
            .extents_sorted_nonempty()
            .expect("oracle settles");
        let session = interleaved_outcome(&case, &config)
            .extents_sorted_nonempty()
            .expect("session settles");
        assert_eq!(session, oracle);
        // And the shrink really happened: gd0 holds only ε and "c" pairs.
        assert_eq!(oracle["gd0"].len(), 2);
    }

    #[test]
    fn shapes_cover_all_kinds() {
        // Pin the shape table: each kind emits at least one clause and
        // parses on its own.
        for kind in 0..SHAPE_COUNT {
            let mut src = String::new();
            shape_clauses(kind, 0, 0, &mut src);
            assert!(!src.is_empty());
            let mut e = Engine::new();
            e.parse_program(&src).unwrap_or_else(|err| {
                panic!("shape {kind} must parse: {err}\n{src}");
            });
        }
    }
}
