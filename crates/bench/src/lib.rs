//! Shared workload builders for the benchmark harness and the experiment
//! runner.
//!
//! Every figure and quantitative claim of the paper maps to one experiment
//! (see DESIGN.md §3 for the index and EXPERIMENTS.md for recorded
//! results). The builders are deterministic (seeded `StdRng`) so benchmark
//! runs and the printed experiment report see identical workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_core::Program;

/// Deterministic RNG for all workloads.
pub fn rng() -> StdRng {
    StdRng::seed_from_u64(0x1995_0525)
}

/// A random word over `alphabet` of length `len`.
pub fn random_word(rng: &mut StdRng, alphabet: &str, len: usize) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    (0..len)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

/// A word of the form `aⁿbⁿcⁿ` (positive instance of Example 1.3).
pub fn abc_word(n: usize) -> String {
    format!("{}{}{}", "a".repeat(n), "b".repeat(n), "c".repeat(n))
}

/// The Example 1.3 pattern-matching program (non-constructive fragment).
pub const ABCN_SRC: &str = r#"
    answer(X) :- r(X), abcn(X[1:N1], X[N1+1:N2], X[N2+1:end]).
    abcn("", "", "") :- true.
    abcn(X, Y, Z) :- X[1] = "a", Y[1] = "b", Z[1] = "c",
                     abcn(X[2:end], Y[2:end], Z[2:end]).
"#;

/// The Example 1.4 reverse program (stratified-constructive).
pub const REVERSE_SRC: &str = r#"
    answer(Y) :- r(X), rev(X, Y).
    rev("", "") :- true.
    rev(X[1:N+1], X[N+1] ++ Y) :- r(X), rev(X[1:N], Y).
"#;

/// The Example 1.5 structural-repeats program.
pub const REP1_SRC: &str = r#"
    rep1(X, X) :- true.
    rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).
"#;

/// The Example 1.5 constructive-repeats program (infinite least fixpoint).
pub const REP2_SRC: &str = r#"
    rep2(X, X) :- seq(X).
    rep2(X ++ Y, Y) :- rep2(X, Y).
"#;

/// The parallel-scaling self-join workload: `grow` shrinks every seed one
/// symbol per round (large per-round deltas), and `pairs` squares it — the
/// kind of wide round the three-phase evaluator's sharded commit spreads
/// across threads.
pub const PAIRS_SRC: &str = r#"
    grow(X[2:end]) :- grow(X), X != "".
    pairs(X, Y) :- grow(X), grow(Y).
"#;

/// The incremental-update workload: a three-predicate mutually recursive
/// trimming chain plus a cross product — ~34 chain facts per seed word
/// spread over many rounds, squared by `pairs`. Eight 33-symbol words
/// settle to a ≥5k-fact base; a short extra word is the "small delta".
pub const CHAIN_SRC: &str = r#"
    chain1(X[2:end]) :- chain0(X), X != "".
    chain2(X[2:end]) :- chain1(X), X != "".
    chain0(X[2:end]) :- chain2(X), X != "".
    pairs(X, Y) :- chain0(X), chain2(Y).
"#;

/// Build a settled [`seqlog_core::session::EngineSession`]: parse `src`,
/// assert the words as unary `pred` facts, and run to the fixpoint.
pub fn settle_session(
    src: &str,
    pred: &str,
    words: &[String],
    config: seqlog_core::EvalConfig,
) -> seqlog_core::session::EngineSession {
    let mut e = Engine::new();
    let p = e.parse_program(src).expect("benchmark program parses");
    let mut session = e.into_session(&p, config).expect("program compiles");
    for w in words {
        session.assert_fact(pred, &[w]).expect("fresh session");
    }
    session.run().expect("workload settles");
    session
}

/// `count` (≤ 26) deterministic words of length `len` over a 3-letter
/// alphabet, each with a unique final symbol so no two words share a
/// non-empty suffix (the suffix relations grow to full, collision-free
/// size).
pub fn distinct_suffix_words(count: usize, len: usize) -> Vec<String> {
    assert!(count <= 26, "unique tails limited to one letter each");
    (0..count)
        .map(|i| {
            let mut word: String = (0..len - 1)
                .map(|j| char::from(b'a' + ((i * 7 + j * 5 + i * j) % 3) as u8))
                .collect();
            word.push(char::from(b'A' + i as u8));
            word
        })
        .collect()
}

/// Parse a program into a fresh engine together with a database binding
/// the given words to unary `pred` facts.
pub fn setup_rel(src: &str, pred: &str, words: &[String]) -> (Engine, Program, Database) {
    let mut e = Engine::new();
    let p = e.parse_program(src).expect("benchmark program parses");
    let mut db = Database::new();
    for w in words {
        e.add_fact(&mut db, pred, &[w]);
    }
    (e, p, db)
}

/// Parse a program into a fresh engine together with an `r`-relation
/// database over the given words.
pub fn setup(src: &str, words: &[String]) -> (Engine, Program, Database) {
    setup_rel(src, "r", words)
}

/// A database of `count` aⁿbⁿcⁿ-shaped words, alternating positives and
/// single-symbol-perturbed negatives (Theorem 3 scaling workload).
pub fn abc_database(rng: &mut StdRng, count: usize, n: usize) -> Vec<String> {
    (0..count)
        .map(|i| {
            let w = abc_word(n);
            if i % 2 == 0 {
                w
            } else {
                let mut chars: Vec<char> = w.chars().collect();
                let pos = rng.gen_range(0..chars.len());
                chars[pos] = if chars[pos] == 'a' { 'b' } else { 'a' };
                chars.into_iter().collect()
            }
        })
        .collect()
}

/// Synthetic DNA sequences for the Example 7.1 workload.
pub fn dna_database(rng: &mut StdRng, count: usize, len: usize) -> Vec<String> {
    (0..count).map(|_| random_word(rng, "acgt", len)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let a = dna_database(&mut rng(), 3, 10);
        let b = dna_database(&mut rng(), 3, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn abc_database_alternates_sign() {
        let words = abc_database(&mut rng(), 4, 3);
        assert_eq!(words[0], "aaabbbccc");
        assert_ne!(words[1], "aaabbbccc");
        assert_eq!(words[0].len(), words[1].len());
    }

    #[test]
    fn bench_programs_parse_and_run() {
        for src in [ABCN_SRC, REVERSE_SRC, REP1_SRC] {
            let (mut e, p, db) = setup(src, &[abc_word(2)]);
            e.evaluate(&p, &db).expect("bench program evaluates");
        }
    }
}
