//! The experiment runner: regenerates every figure and quantitative claim
//! of the paper as printed tables (the series recorded in EXPERIMENTS.md).
//!
//! Run with: `cargo run -p seqlog-bench --bin experiments --release`

use seqlog_bench::*;
use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_core::eval::{EvalConfig, EvalError, Strategy};
use seqlog_core::prelude::{guard_program, translate_program};
use seqlog_sequence::Alphabet;
use seqlog_transducer::{library, trace, ExecLimits, ExecStats, Network};
use seqlog_turing::{samples, strip_trailing_blanks, tm_to_network, tm_to_seqlog, NetworkOptions};
use std::time::Instant;

fn main() {
    println!("# Experiment report — Sequences, Datalog, and Transducers\n");
    e1_fig2_square_trace();
    e2_thm4_order2_growth();
    e3_thm4_order3_growth();
    e4_thm3_ptime_nonconstructive();
    e5_thm8_model_size();
    e6_ex15_structural_vs_constructive();
    e7_thm7_translation();
    e8_thm1_tm_simulation();
    e9_thm5_ptime_network();
    e10_ex71_genome_pipeline();
    e11_thm10_guarding();
    e12_ablate_seminaive();
    e14_fig3_safety_verdicts();
}

/// E1 — Fig. 2: the step table of `T_square` on `abc`.
fn e1_fig2_square_trace() {
    println!("## E1 (Fig. 2) — T_square on `abc`\n");
    let mut a = Alphabet::new();
    let syms: Vec<_> = "abc".chars().map(|c| a.intern_char(c)).collect();
    let t = library::square(&mut a, &syms);
    let input = a.seq_of_str("abc");
    let (rows, out) = trace(&t, &[&input], &a).expect("trace");
    println!("| step | input head | output | operation | new output |");
    println!("|------|-----------|--------|-----------|------------|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {} |",
            r.step, r.heads[0], r.output_before, r.operation, r.output_after
        );
    }
    println!(
        "\nfinal output `{}` (length {} = 3²)\n",
        a.render(&out),
        out.len()
    );
}

/// E2 — Theorem 4, order 2: |out| = n^(2^d) for a diameter-d squarer chain.
fn e2_thm4_order2_growth() {
    println!("## E2 (Thm 4, order 2) — output length of squarer chains\n");
    println!("| n | d=1 measured | d=1 predicted | d=2 measured | d=2 predicted | d=3 measured | d=3 predicted |");
    println!("|---|---|---|---|---|---|---|");
    let mut a = Alphabet::new();
    let syms: Vec<_> = "x".chars().map(|c| a.intern_char(c)).collect();
    for n in [2usize, 3, 4] {
        let mut row = format!("| {n} |");
        for d in 1..=3usize {
            let machines: Vec<_> = (0..d).map(|_| library::square(&mut a, &syms)).collect();
            let net = Network::chain(format!("sq^{d}"), machines);
            let input: Vec<_> = std::iter::repeat_n(syms[0], n).collect();
            let out = net
                .run(
                    &[&input],
                    &ExecLimits {
                        max_output_len: 1 << 27,
                        ..Default::default()
                    },
                    &mut ExecStats::default(),
                )
                .expect("chain runs");
            let predicted = (n as u64).pow(2u32.pow(d as u32));
            row.push_str(&format!(" {} | {} |", out.len(), predicted));
            assert_eq!(out.len() as u64, predicted);
        }
        println!("{row}");
    }
    println!(
        "\nShape: polynomial for fixed d, exactly n^(2^d) — the Theorem 4 bound is attained.\n"
    );
}

/// E3 — Theorem 4, order 3: doubly exponential output of a single machine.
fn e3_thm4_order3_growth() {
    println!("## E3 (Thm 4, order 3) — output length of the order-3 pump\n");
    println!("| n | measured | predicted 2^(2^(n-2)) |");
    println!("|---|----------|------------------------|");
    let mut a = Alphabet::new();
    let syms: Vec<_> = "x".chars().map(|c| a.intern_char(c)).collect();
    let t = library::exp(&mut a, &syms);
    for n in [3usize, 4, 5, 6] {
        let input: Vec<_> = std::iter::repeat_n(syms[0], n).collect();
        let out = seqlog_transducer::run(
            &t,
            &[&input],
            &ExecLimits::default(),
            &mut ExecStats::default(),
        )
        .expect("runs");
        let predicted = 2u64.pow(2u32.pow(n as u32 - 2));
        println!("| {n} | {} | {predicted} |", out.len());
        assert_eq!(out.len() as u64, predicted);
    }
    println!("\nShape: hyperexponential (2^2^Θ(n)), matching the order-3 bound.\n");
}

/// E4 — Theorem 3: non-constructive evaluation scales polynomially.
fn e4_thm3_ptime_nonconstructive() {
    println!("## E4 (Thm 3) — non-constructive fixpoint cost vs database size\n");
    println!("| sequences | n (aⁿbⁿcⁿ) | domain | facts | rounds | time (ms) |");
    println!("|---|---|---|---|---|---|");
    let mut r = rng();
    for (count, n) in [(2, 4), (4, 6), (8, 8), (12, 10)] {
        let words = abc_database(&mut r, count, n);
        let (mut e, p, db) = setup(ABCN_SRC, &words);
        let t0 = Instant::now();
        let m = e.evaluate(&p, &db).expect("non-constructive ⇒ finite");
        let ms = t0.elapsed().as_millis();
        println!(
            "| {count} | {n} | {} | {} | {} | {ms} |",
            m.stats.domain_size, m.stats.facts, m.stats.rounds
        );
        // The domain never grows beyond the database's closure.
        assert_eq!(m.domain.max_len(), 3 * n);
    }
    println!("\nShape: cost polynomial in database size; domain fixed by the database (PTIME).\n");
}

/// E5 — Theorem 8: strongly safe order-2 programs have polynomial models.
fn e5_thm8_model_size() {
    println!("## E5 (Thm 8) — minimal-model size of a strongly safe order-2 program\n");
    println!("| db sequences | db size (domain) | model domain | model facts | ratio |");
    println!("|---|---|---|---|---|");
    let mut r = rng();
    for count in [2usize, 4, 8, 16] {
        let words = dna_database(&mut r, count, 12);
        let mut e = Engine::new();
        let syms: Vec<_> = "acgt".chars().map(|c| e.alphabet.intern_char(c)).collect();
        let sq = library::square(&mut e.alphabet, &syms);
        e.register_transducer("square", sq);
        let p = e
            .parse_program("doubled(X ++ X) :- r(X).\nsquared(@square(X)) :- doubled(X).")
            .unwrap();
        assert!(e.analyze(&p).strongly_safe);
        let mut db = Database::new();
        let mut db_domain = 0usize;
        for w in &words {
            e.add_fact(&mut db, "r", &[w]);
            db_domain += w.len() * (w.len() + 1) / 2 + 1; // upper bound per word
        }
        let m = e.evaluate(&p, &db).expect("strongly safe ⇒ finite");
        println!(
            "| {count} | ≤{db_domain} | {} | {} | {:.1} |",
            m.stats.domain_size,
            m.stats.facts,
            m.stats.domain_size as f64 / db_domain as f64
        );
    }
    println!(
        "\nShape: model size grows polynomially (here ~linearly in the number of sequences).\n"
    );
}

/// E6 — Example 1.5 / Theorem 2: structural terminates, constructive diverges.
fn e6_ex15_structural_vs_constructive() {
    println!("## E6 (Ex 1.5 / Thm 2) — rep1 (structural) vs rep2 (constructive)\n");
    let word = "abab".to_string();
    let (mut e, p1, mut db) = setup(REP1_SRC, std::slice::from_ref(&word));
    e.add_fact(&mut db, "seq", &[&word]);
    let t0 = Instant::now();
    let m1 = e.evaluate(&p1, &db).expect("rep1 finite");
    println!(
        "rep1: fixpoint in {} rounds, {} facts, domain {} (max length {} — never grew), {} µs",
        m1.stats.rounds,
        m1.stats.facts,
        m1.stats.domain_size,
        m1.domain.max_len(),
        t0.elapsed().as_micros()
    );
    let p2 = e.parse_program(REP2_SRC).unwrap();
    match e.evaluate_with(&p2, &db, &EvalConfig::probe()) {
        Err(EvalError::Budget { kind, stats }) => println!(
            "rep2: DIVERGES — {kind:?} budget exhausted after {} rounds, {} facts, max created length {}\n",
            stats.rounds, stats.facts, stats.max_seq_len
        ),
        other => panic!("expected divergence, got {other:?}"),
    }
}

/// E7 — Theorem 7: the translation preserves answers; native wins on cost.
fn e7_thm7_translation() {
    println!("## E7 (Thm 7) — Transducer Datalog vs translated Sequence Datalog\n");
    println!("| dna len | TD time (µs) | SD-translation time (µs) | slowdown | answers equal |");
    println!("|---|---|---|---|---|");
    let mut r = rng();
    for len in [4usize, 8, 12] {
        let mut e = Engine::new();
        let t = library::transcribe(&mut e.alphabet);
        e.register_transducer("transcribe", t);
        let td = e
            .parse_program("rnaseq(D, @transcribe(D)) :- dnaseq(D).")
            .unwrap();
        let sd = translate_program(&td, &e.registry, &mut e.alphabet, &mut e.store).unwrap();
        let mut db = Database::new();
        let w = random_word(&mut r, "acgt", len);
        e.add_fact(&mut db, "dnaseq", &[&w]);

        let t0 = Instant::now();
        let m_td = e.evaluate(&td, &db).unwrap();
        let td_us = t0.elapsed().as_micros();
        let t1 = Instant::now();
        let m_sd = e.evaluate(&sd, &db).unwrap();
        let sd_us = t1.elapsed().as_micros();

        let mut a = e.rendered_tuples(&m_td, "rnaseq");
        let mut b = e.rendered_tuples(&m_sd, "rnaseq");
        a.sort();
        b.sort();
        println!(
            "| {len} | {td_us} | {sd_us} | {:.0}× | {} |",
            sd_us as f64 / td_us.max(1) as f64,
            a == b
        );
        assert_eq!(a, b);
    }
    println!("\nShape: identical answers; the rule-level simulation pays orders of magnitude\n(the translation preserves expressibility, not cost).\n");
}

/// E8 — Theorem 1: TM-in-Datalog agrees with direct execution.
fn e8_thm1_tm_simulation() {
    println!("## E8 (Thm 1) — Turing machine in Sequence Datalog\n");
    println!("| machine | input | TM steps | fixpoint rounds | facts | outputs agree |");
    println!("|---|---|---|---|---|---|");
    type TmBuilder = fn(&mut Alphabet) -> seqlog_turing::TuringMachine;
    let machines: Vec<(TmBuilder, &str)> = vec![
        (samples::complement_tm, "110010"),
        (samples::increment_tm, "1101"),
        (samples::parity_tm, "10101"),
    ];
    for (build, input) in machines {
        let mut e = Engine::new();
        let tm = build(&mut e.alphabet);
        let program = tm_to_seqlog(&tm, &mut e.alphabet, &mut e.store);
        let syms = e.alphabet.seq_of_str(input);
        let run = tm.run(&syms, 1_000_000).unwrap();
        let direct = e
            .alphabet
            .render(&strip_trailing_blanks(run.output, tm.blank));
        let mut db = Database::new();
        e.add_fact(&mut db, "input", &[input]);
        let m = e.evaluate(&program, &db).unwrap();
        let mut sim = e.rendered_tuples(&m, "output")[0][0].clone();
        while sim.ends_with('␣') {
            sim.pop();
        }
        println!(
            "| {} | {input} | {} | {} | {} | {} |",
            tm.name,
            run.steps,
            m.stats.rounds,
            m.stats.facts,
            sim == direct
        );
        assert_eq!(sim, direct);
    }
    println!();
}

/// E9 — Theorem 5: order-2 networks compute PTIME functions.
fn e9_thm5_ptime_network() {
    println!("## E9 (Thm 5) — Turing machine as an order-2 network\n");
    println!("| machine | input | network steps | subcalls | outputs agree |");
    println!("|---|---|---|---|---|");
    type TmBuilder = fn(&mut Alphabet) -> seqlog_turing::TuringMachine;
    let cases: Vec<(TmBuilder, &str, usize)> = vec![
        (samples::complement_tm, "110010", 1),
        (samples::increment_tm, "1101", 1),
        (samples::sort_bits_tm, "1010", 2),
        (samples::abc_recognizer_tm, "aabbcc", 2),
    ];
    for (build, input, squarings) in cases {
        let mut a = Alphabet::new();
        let tm = build(&mut a);
        let net = tm_to_network(
            &tm,
            &mut a,
            NetworkOptions {
                counter_squarings: squarings,
            },
        );
        assert_eq!(net.order(), 2);
        let syms = a.seq_of_str(input);
        let run = tm.run(&syms, 1_000_000).unwrap();
        let direct = a.render(&strip_trailing_blanks(run.output, tm.blank));
        let mut stats = ExecStats::default();
        let out = net
            .run(&[&syms], &ExecLimits::default(), &mut stats)
            .unwrap();
        let got = a.render(&out);
        println!(
            "| {} | {input} | {} | {} | {} |",
            tm.name,
            stats.steps,
            stats.subcalls,
            got == direct
        );
        assert_eq!(got, direct);
    }
    println!();
}

/// E10 — Example 7.1: genome pipeline throughput is linear.
fn e10_ex71_genome_pipeline() {
    println!("## E10 (Ex 7.1) — DNA→RNA→protein pipeline\n");
    println!("| dna len | network steps | steps/len | TD eval time (µs) |");
    println!("|---|---|---|---|");
    let mut r = rng();
    for len in [100usize, 1_000, 10_000] {
        let w = random_word(&mut r, "acgt", len);
        let mut e = Engine::new();
        let t1 = library::transcribe(&mut e.alphabet);
        let t2 = library::translate(&mut e.alphabet);
        let net = Network::chain("pipe", vec![t1.clone(), t2.clone()]);
        e.register_transducer("transcribe", t1);
        e.register_transducer("translate", t2);
        let syms = e.alphabet.seq_of_str(&w);
        let mut stats = ExecStats::default();
        net.run(&[&syms], &ExecLimits::default(), &mut stats)
            .unwrap();

        let p = e
            .parse_program(
                "rnaseq(D, @transcribe(D)) :- dnaseq(D).\n\
                 proteinseq(D, @translate(R)) :- rnaseq(D, R).",
            )
            .unwrap();
        let mut db = Database::new();
        e.add_fact(&mut db, "dnaseq", &[&w]);
        let t0 = Instant::now();
        // Domain closure is quadratic in sequence length, so for the large
        // inputs we only time the network route.
        let td_us = if len <= 100 {
            e.evaluate(&p, &db).unwrap();
            t0.elapsed().as_micros().to_string()
        } else {
            "(network only)".to_string()
        };
        println!(
            "| {len} | {} | {:.2} | {td_us} |",
            stats.steps,
            stats.steps as f64 / len as f64
        );
    }
    println!("\nShape: transducer steps exactly 2× input length (two order-1 passes) — linear.\n");
}

/// E11 — Theorem 10: guarding preserves answers at modest cost.
fn e11_thm10_guarding() {
    println!("## E11 (Thm 10) — guarding overhead\n");
    println!("| program | raw time (µs) | guarded time (µs) | extra dom facts | answers equal |");
    println!("|---|---|---|---|---|");
    let mut e = Engine::new();
    let p = e.parse_program("p(X) :- q(X[2:end]).").unwrap();
    let g = guard_program(&p, &[("seed".into(), 1)]);
    let mut db = Database::new();
    e.add_fact(&mut db, "seed", &["acgtacgtacgt"]);
    e.add_fact(&mut db, "q", &["cgtacgtacgt"]);
    let t0 = Instant::now();
    let m1 = e.evaluate(&p, &db).unwrap();
    let raw_us = t0.elapsed().as_micros();
    let t1 = Instant::now();
    let m2 = e.evaluate(&g, &db).unwrap();
    let guarded_us = t1.elapsed().as_micros();
    let mut a = e.answers(&m1, "p");
    let mut b = e.answers(&m2, "p");
    a.sort();
    b.sort();
    println!(
        "| p(X) :- q(X[2:end]) | {raw_us} | {guarded_us} | {} | {} |\n",
        m2.facts.total_facts() - m1.facts.total_facts(),
        a == b
    );
    assert_eq!(a, b);
}

/// E12 — ablation: naive vs semi-naive evaluation.
fn e12_ablate_seminaive() {
    println!("## E12 (ablation) — naive vs semi-naive evaluation\n");
    println!("| workload | naive (µs) | semi-naive (µs) | speedup |");
    println!("|---|---|---|---|");
    let mut r = rng();
    let workloads: Vec<(&str, &str, Vec<String>)> = vec![
        ("abcn n=8 ×8", ABCN_SRC, abc_database(&mut r, 8, 8)),
        (
            "reverse len=14",
            REVERSE_SRC,
            vec![random_word(&mut r, "01", 14)],
        ),
        ("rep1 (abab)^3", REP1_SRC, vec!["abababab".into()]),
    ];
    for (name, src, words) in workloads {
        let (mut e, p, mut db) = setup(src, &words);
        for w in &words {
            e.add_fact(&mut db, "seq", &[w]);
        }
        let t0 = Instant::now();
        let naive = e
            .evaluate_with(
                &p,
                &db,
                &EvalConfig {
                    strategy: Strategy::Naive,
                    ..Default::default()
                },
            )
            .unwrap();
        let naive_us = t0.elapsed().as_micros();
        let t1 = Instant::now();
        let semi = e
            .evaluate_with(
                &p,
                &db,
                &EvalConfig {
                    strategy: Strategy::SemiNaive,
                    ..Default::default()
                },
            )
            .unwrap();
        let semi_us = t1.elapsed().as_micros();
        assert_eq!(naive.facts.total_facts(), semi.facts.total_facts());
        println!(
            "| {name} | {naive_us} | {semi_us} | {:.1}× |",
            naive_us as f64 / semi_us.max(1) as f64
        );
    }
    println!();
}

/// E14 — Fig. 3: safety verdicts for the Example 8.1 programs.
fn e14_fig3_safety_verdicts() {
    println!("## E14 (Fig. 3 / Ex 8.1) — strong-safety verdicts\n");
    println!("| program | constructive cycle | verdict |");
    println!("|---|---|---|");
    let mut e = Engine::new();
    let programs: Vec<(&str, &str)> = vec![
        (
            "P1",
            "p(X) :- r(X, Y), q(Y).\nq(X) :- r(X, Y), p(Y).\nr(@t1(X), @t2(Y)) :- a(X, Y).",
        ),
        ("P2", "p(@t(X)) :- p(X)."),
        ("P3", "q(X) :- r(X).\nr(@t(X)) :- p(X).\np(X) :- q(X)."),
        (
            "Ex 5.1",
            "double(X ++ X) :- r(X).\nquadruple(X ++ X) :- double(X).",
        ),
        ("rep2", REP2_SRC),
    ];
    for (name, src) in programs {
        let p = e.parse_program(src).unwrap();
        let rep = e.analyze(&p);
        let cyc = rep
            .violations
            .iter()
            .map(|v| format!("{}→{}", v.from, v.to))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "| {name} | {} | {} |",
            if cyc.is_empty() {
                "—".to_string()
            } else {
                cyc
            },
            if rep.strongly_safe {
                "strongly safe"
            } else {
                "not strongly safe"
            }
        );
    }
    println!();
}
