//! E9 (Thm 5): cost of running a Turing machine through its compiled
//! order-2 network, against direct machine execution — the network pays the
//! counter-driven simulation cost but stays polynomial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_sequence::Alphabet;
use seqlog_turing::{samples, tm_to_network, NetworkOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm5_ptime_network");
    group.sample_size(10);
    let mut a = Alphabet::new();
    let tm = samples::complement_tm(&mut a);
    let net = tm_to_network(
        &tm,
        &mut a,
        NetworkOptions {
            counter_squarings: 1,
        },
    );

    for n in [2usize, 4, 8] {
        let input: Vec<_> = a.seq_of_str(&"10".repeat(n / 2));
        group.bench_with_input(BenchmarkId::new("network", n), &input, |b, input| {
            b.iter(|| net.run_simple(&[input]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("direct", n), &input, |b, input| {
            b.iter(|| tm.run(input, 1_000_000).unwrap().steps)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
