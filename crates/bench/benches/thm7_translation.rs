//! E7 (Thm 7): native Transducer Datalog evaluation vs its translation to
//! pure Sequence Datalog — same answers, orders-of-magnitude cost gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_bench::{random_word, rng};
use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_core::translate::translate_program;
use seqlog_transducer::library;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm7_translation");
    group.sample_size(10);
    for len in [4usize, 8] {
        let word = random_word(&mut rng(), "acgt", len);
        group.bench_with_input(BenchmarkId::new("native_td", len), &word, |b, w| {
            b.iter_batched(
                || {
                    let mut e = Engine::new();
                    let t = library::transcribe(&mut e.alphabet);
                    e.register_transducer("transcribe", t);
                    let p = e
                        .parse_program("rnaseq(D, @transcribe(D)) :- dnaseq(D).")
                        .unwrap();
                    let mut db = Database::new();
                    e.add_fact(&mut db, "dnaseq", &[w]);
                    (e, p, db)
                },
                |(mut e, p, db)| e.evaluate(&p, &db).unwrap().stats.facts,
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("translated_sd", len), &word, |b, w| {
            b.iter_batched(
                || {
                    let mut e = Engine::new();
                    let t = library::transcribe(&mut e.alphabet);
                    e.register_transducer("transcribe", t);
                    let td = e
                        .parse_program("rnaseq(D, @transcribe(D)) :- dnaseq(D).")
                        .unwrap();
                    let sd =
                        translate_program(&td, &e.registry, &mut e.alphabet, &mut e.store).unwrap();
                    let mut db = Database::new();
                    e.add_fact(&mut db, "dnaseq", &[w]);
                    (e, sd, db)
                },
                |(mut e, sd, db)| e.evaluate(&sd, &db).unwrap().stats.facts,
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
