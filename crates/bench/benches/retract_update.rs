//! One-fact retraction on a settled ≥8k-fact base vs batch re-evaluation
//! of the surviving database (the Delete-and-Rederive value proposition).
//!
//! The workload is two independent trimming families sharing a session: a
//! large *cold* family (a CHAIN_SRC-style mutually recursive chain plus a
//! cross product, holding the bulk of the facts) and a small *hot* family.
//! Retracting one hot seed word exercises the selective re-derive pass:
//! only clauses whose head predicate lost tuples re-run, so the cold
//! extents are never re-matched — while the batch route must re-derive all
//! of them from scratch.
//!
//! Both routes are differentially pinned before timing: the maintained
//! session's fact count must equal a from-scratch evaluation of the
//! survivors. Session clones happen in `iter_batched` setup and are
//! excluded from the measurement.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use seqlog_bench::distinct_suffix_words;
use seqlog_core::EvalConfig;

const HOT_COLD_SRC: &str = r#"
    cold1(X[2:end]) :- cold0(X), X != "".
    cold2(X[2:end]) :- cold1(X), X != "".
    cold0(X[2:end]) :- cold2(X), X != "".
    coldpairs(X, Y) :- cold0(X), cold2(Y).
    hot1(X[2:end]) :- hot0(X), X != "".
    hot0(X[2:end]) :- hot1(X), X != "".
"#;

/// The hot seed that gets retracted: short, tail symbol unused elsewhere.
const RETRACT_WORD: &str = "abcabcabZ";
/// A hot seed that stays (the hot family must not be trivially empty).
const KEEP_WORD: &str = "bcabcabcY";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("retract_update");
    group.sample_size(10);

    let cold_words = distinct_suffix_words(10, 40);

    // Settle the full base once; every timed iteration works on a clone.
    let settled = {
        let mut e = seqlog_core::Engine::new();
        let p = e.parse_program(HOT_COLD_SRC).expect("program parses");
        let mut s = e
            .into_session(&p, EvalConfig::default())
            .expect("program compiles");
        for w in &cold_words {
            s.assert_fact("cold0", &[w]).unwrap();
        }
        s.assert_fact("hot0", &[RETRACT_WORD]).unwrap();
        s.assert_fact("hot0", &[KEEP_WORD]).unwrap();
        s.run().expect("workload settles");
        s
    };
    let base_facts = settled.stats().facts;
    assert!(
        base_facts >= 8_000,
        "settled base too small for the claim: {base_facts} facts"
    );

    // Differential pin: retract ≡ fresh batch evaluation of the survivors.
    let mut survivor_words: Vec<(String, String)> = cold_words
        .iter()
        .map(|w| ("cold0".to_string(), w.clone()))
        .collect();
    survivor_words.push(("hot0".to_string(), KEEP_WORD.to_string()));
    let survivor_facts = {
        let mut e = seqlog_core::Engine::new();
        let p = e.parse_program(HOT_COLD_SRC).expect("program parses");
        let mut db = seqlog_core::Database::new();
        for (pred, w) in &survivor_words {
            e.add_fact(&mut db, pred, &[w]);
        }
        e.evaluate(&p, &db).expect("survivors settle").stats.facts
    };
    {
        let mut s = settled.clone();
        assert!(s.retract_fact("hot0", &[RETRACT_WORD]).unwrap());
        assert_eq!(s.stats().facts, survivor_facts, "retract ≠ batch");
    }

    group.bench_with_input(
        BenchmarkId::from_parameter(format!("retract1_on_{base_facts}facts")),
        &settled,
        |b, settled| {
            b.iter_batched(
                || settled.clone(),
                |mut s| {
                    assert!(s.retract_fact("hot0", &[RETRACT_WORD]).unwrap());
                    let stats = s.stats();
                    assert_eq!(stats.facts, survivor_facts);
                    stats.facts
                },
                BatchSize::LargeInput,
            )
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter(format!("batch_reeval_{survivor_facts}facts")),
        &survivor_words,
        |b, words| {
            b.iter_batched(
                || {
                    // Mirror setup_rel for the two-predicate survivor set.
                    let mut e = seqlog_core::Engine::new();
                    let p = e.parse_program(HOT_COLD_SRC).expect("program parses");
                    let mut db = seqlog_core::Database::new();
                    for (pred, w) in words {
                        e.add_fact(&mut db, pred, &[w]);
                    }
                    (e, p, db)
                },
                |(mut e, p, db)| {
                    let m = e.evaluate(&p, &db).unwrap();
                    assert_eq!(m.stats.facts, survivor_facts);
                    m.stats.facts
                },
                BatchSize::LargeInput,
            )
        },
    );

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
