//! Match-phase thread scaling: the same workloads swept over
//! `EvalConfig::threads ∈ {1, 2, 4, 8}`.
//!
//! Two shapes: the `pairs` self-join (wide per-round deltas — the case the
//! two-phase evaluator shards), and the Theorem 3 `abcn` pattern workload
//! (small rounds that stay below the parallel dispatch threshold — the
//! sweep documents that thread count is free there). Results are
//! bit-for-bit identical across thread counts by construction; each
//! iteration asserts the fact count to pin that down.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_bench::{
    abc_database, distinct_suffix_words, rng, setup, setup_rel, ABCN_SRC, PAIRS_SRC,
};
use seqlog_core::eval::EvalConfig;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    let words = distinct_suffix_words(16, 32);
    let mut expected_facts: Option<usize> = None;
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("pairs_16x32_t{threads}")),
            &words,
            |b, words| {
                b.iter_batched(
                    || setup_rel(PAIRS_SRC, "grow", words),
                    |(mut e, p, db)| {
                        let cfg = EvalConfig {
                            threads,
                            ..EvalConfig::default()
                        };
                        let m = e.evaluate_with(&p, &db, &cfg).unwrap();
                        match expected_facts {
                            None => expected_facts = Some(m.stats.facts),
                            Some(f) => assert_eq!(f, m.stats.facts, "threads={threads}"),
                        }
                        m.stats.facts
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }

    let words = abc_database(&mut rng(), 8, 8);
    let mut expected_facts: Option<usize> = None;
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("abcn_8seqs_n8_t{threads}")),
            &words,
            |b, words| {
                b.iter_batched(
                    || setup(ABCN_SRC, words),
                    |(mut e, p, db)| {
                        let cfg = EvalConfig {
                            threads,
                            ..EvalConfig::default()
                        };
                        let m = e.evaluate_with(&p, &db, &cfg).unwrap();
                        assert!(!m.tuples("answer").is_empty());
                        match expected_facts {
                            None => expected_facts = Some(m.stats.facts),
                            Some(f) => assert_eq!(f, m.stats.facts, "threads={threads}"),
                        }
                        m.stats.facts
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
