//! Round thread scaling: the same workloads swept over
//! `EvalConfig::threads ∈ {1, 2, 4, 8}`.
//!
//! Three shapes: the `pairs` self-join (wide per-round deltas — the case
//! the three-phase evaluator pushes through the sharded commit), the
//! Theorem 3 `abcn` pattern workload (small rounds that stay below the
//! parallel dispatch threshold — the sweep documents that thread count is
//! free there), and `delta1M` (a settled session resumed with a batch
//! whose semi-naive delta commits ~one million facts in a single round —
//! the sharded-commit headline case). Results are bit-for-bit identical
//! across thread counts by construction; each iteration asserts the fact
//! count to pin that down.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_bench::{
    abc_database, distinct_suffix_words, rng, settle_session, setup, setup_rel, ABCN_SRC, PAIRS_SRC,
};
use seqlog_core::eval::EvalConfig;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    let words = distinct_suffix_words(16, 32);
    let mut expected_facts: Option<usize> = None;
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("pairs_16x32_t{threads}")),
            &words,
            |b, words| {
                b.iter_batched(
                    || setup_rel(PAIRS_SRC, "grow", words),
                    |(mut e, p, db)| {
                        let cfg = EvalConfig {
                            threads,
                            ..EvalConfig::default()
                        };
                        let m = e.evaluate_with(&p, &db, &cfg).unwrap();
                        match expected_facts {
                            None => expected_facts = Some(m.stats.facts),
                            Some(f) => assert_eq!(f, m.stats.facts, "threads={threads}"),
                        }
                        m.stats.facts
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }

    // Million-fact delta: settle one 41-symbol seed (41 `grow` suffixes,
    // 1 681 `pairs`), then assert the other 25 seeds in one batch. The
    // resumed fixpoint's delta rounds commit ~1.14M facts — wide enough
    // that every `pairs` dedupe runs through the sharded commit.
    let words = distinct_suffix_words(26, 41);
    let mut expected_facts: Option<usize> = None;
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("delta1M_t{threads}")),
            &words,
            |b, words| {
                let cfg = EvalConfig {
                    threads,
                    max_facts: 4_000_000,
                    max_domain: 4_000_000,
                    ..EvalConfig::default()
                };
                b.iter_batched(
                    || {
                        let mut s = settle_session(PAIRS_SRC, "grow", &words[..1], cfg);
                        for w in &words[1..] {
                            s.assert_fact("grow", &[w]).unwrap();
                        }
                        s
                    },
                    |mut s| {
                        s.run().unwrap();
                        let facts = s.stats().facts;
                        // 26 seeds × 41 suffixes + the shared empty word.
                        let grow = 26 * 41 + 1;
                        assert_eq!(
                            facts,
                            grow * grow + grow,
                            "delta must settle to ~1.1M pairs"
                        );
                        match expected_facts {
                            None => expected_facts = Some(facts),
                            Some(f) => assert_eq!(f, facts, "threads={threads}"),
                        }
                        facts
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }

    let words = abc_database(&mut rng(), 8, 8);
    let mut expected_facts: Option<usize> = None;
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("abcn_8seqs_n8_t{threads}")),
            &words,
            |b, words| {
                b.iter_batched(
                    || setup(ABCN_SRC, words),
                    |(mut e, p, db)| {
                        let cfg = EvalConfig {
                            threads,
                            ..EvalConfig::default()
                        };
                        let m = e.evaluate_with(&p, &db, &cfg).unwrap();
                        assert!(!m.tuples("answer").is_empty());
                        match expected_facts {
                            None => expected_facts = Some(m.stats.facts),
                            Some(f) => assert_eq!(f, m.stats.facts, "threads={threads}"),
                        }
                        m.stats.facts
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
