//! Durability cost and recovery latency for the session WAL + snapshot
//! layer (PR 5).
//!
//! Two groups:
//!
//! * `wal_overhead` — the same 512-assert burst into an idle session,
//!   unlogged vs logged (flush-per-record, the default) vs logged with
//!   `sync_data` (fsync-per-record). The spread between the first two is
//!   the price of crash-consistency against a process kill; the third adds
//!   survival of an OS crash.
//! * `recovery_time` — `open_durable` on a prepared directory: once where
//!   the state lives in the log tail (snapshot of the empty attach point +
//!   513 records to replay through the session paths), and once where a
//!   `checkpoint` folded everything into the snapshot (empty tail). The
//!   gap is what the auto-checkpoint cadence trades between log-tail
//!   replay and snapshot decode at recovery time (with this trivial
//!   program the replay route can win; the balance tips as derivation
//!   per record grows).
//!
//! Both groups pin their fact and record counts before/while timing, so a
//! silently short log or a lossy recovery fails the bench instead of
//! flattering it.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use seqlog_core::session::EngineSession;
use seqlog_core::{DurabilityOptions, Engine, EvalConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A trivial program: asserts commit one base fact each, and the settling
/// run derives exactly one `t0` tuple per `r0` word, so the timings are
/// dominated by the durability machinery rather than by derivation.
const SRC: &str = "t0(X) :- r0(X).\n";

/// Asserts per timed burst (and per prepared log tail).
const BURST: usize = 512;

/// Self-cleaning scratch directory (std-only; the bench crate does not
/// depend on the testkit).
struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "seqlog-bench-durability-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path }
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// `n` distinct words ("a"/"b"/"c" base-3 digits, length 10) — the bench
/// needs more than the 26 unique-tail words `distinct_suffix_words` caps
/// at, and suffix-collision-freedom is irrelevant here.
fn words(n: usize) -> Vec<String> {
    assert!(n <= 3usize.pow(10));
    (0..n)
        .map(|i| {
            (0..10)
                .rev()
                .map(|d| char::from(b'a' + ((i / 3usize.pow(d)) % 3) as u8))
                .collect()
        })
        .collect()
}

fn fresh_session() -> EngineSession {
    let mut e = Engine::new();
    let p = e.parse_program(SRC).expect("benchmark program parses");
    e.into_session(&p, EvalConfig::default())
        .expect("program compiles")
}

/// No auto-checkpointing: `wal_overhead` must time pure logging, and the
/// `recovery_time` dirs control their snapshots explicitly.
fn opts(sync_data: bool) -> DurabilityOptions {
    DurabilityOptions {
        snapshot_every: 0,
        sync_data,
        ..DurabilityOptions::default()
    }
}

fn assert_burst(s: &mut EngineSession, words: &[String]) -> usize {
    for w in words {
        assert!(s.assert_fact("r0", &[w]).expect("assert commits"));
    }
    let facts = s.stats().facts;
    assert_eq!(facts, words.len(), "burst committed short");
    facts
}

fn wal_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_overhead");
    group.sample_size(10);
    let ws = words(BURST);

    group.bench_with_input(
        BenchmarkId::from_parameter(format!("assert{BURST}_unlogged")),
        &ws,
        |b, ws| {
            b.iter_batched(
                fresh_session,
                |mut s| assert_burst(&mut s, ws),
                BatchSize::LargeInput,
            )
        },
    );

    for (label, sync_data) in [("logged", false), ("logged_fsync", true)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("assert{BURST}_{label}")),
            &ws,
            |b, ws| {
                b.iter_batched(
                    || {
                        let dir = ScratchDir::new(label);
                        let mut s = fresh_session();
                        s.make_durable(&dir.path, opts(sync_data))
                            .expect("attach log");
                        (s, dir)
                    },
                    // The dir rides along so its cleanup lands in the next
                    // setup phase, outside the measurement.
                    |(mut s, dir)| (assert_burst(&mut s, ws), dir),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

/// Build a durable dir holding `BURST` asserts + one settling run
/// (BURST+1 log records); with `checkpointed`, fold it all into a
/// snapshot so the log tail is dead weight.
fn prepared_dir(tag: &str, checkpointed: bool) -> (ScratchDir, usize) {
    let dir = ScratchDir::new(tag);
    let mut s = fresh_session();
    s.make_durable(&dir.path, opts(false)).expect("attach log");
    for w in &words(BURST) {
        assert!(s.assert_fact("r0", &[w]).expect("assert commits"));
    }
    s.run().expect("workload settles");
    if checkpointed {
        s.checkpoint().expect("checkpoint");
    }
    assert_eq!(s.durable_records(), Some(BURST as u64 + 1));
    let facts = s.stats().facts;
    assert_eq!(facts, 2 * BURST, "one t0 per r0 expected");
    (dir, facts)
}

fn recover(dir: &Path, expect_facts: usize) -> usize {
    let mut e = Engine::new();
    let p = e.parse_program(SRC).expect("benchmark program parses");
    let s = EngineSession::open_durable(e, &p, EvalConfig::default(), dir, opts(false))
        .expect("recovery succeeds");
    assert_eq!(s.durable_records(), Some(BURST as u64 + 1));
    let facts = s.stats().facts;
    assert_eq!(facts, expect_facts, "recovery lost facts");
    facts
}

fn recovery_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_time");
    group.sample_size(10);

    for (tag, checkpointed) in [("replay_tail", false), ("from_snapshot", true)] {
        let (dir, facts) = prepared_dir(tag, checkpointed);
        let records = if checkpointed { 0 } else { BURST + 1 };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{tag}_{records}records_{facts}facts")),
            &dir,
            |b, dir| b.iter(|| recover(&dir.path, facts)),
        );
    }
    group.finish();
}

criterion_group!(benches, wal_overhead, recovery_time);
criterion_main!(benches);
