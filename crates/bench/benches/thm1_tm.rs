//! E8 (Thm 1): fixpoint cost of the Turing-machine-in-Datalog simulation vs
//! direct machine execution — the price of completeness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_turing::{samples, tm_to_seqlog};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1_tm_simulation");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        let input = "10".repeat(n / 2);
        group.bench_with_input(BenchmarkId::new("datalog_sim", n), &input, |b, input| {
            b.iter_batched(
                || {
                    let mut e = Engine::new();
                    let tm = samples::complement_tm(&mut e.alphabet);
                    let p = tm_to_seqlog(&tm, &mut e.alphabet, &mut e.store);
                    let mut db = Database::new();
                    e.add_fact(&mut db, "input", &[input]);
                    (e, p, db)
                },
                |(mut e, p, db)| e.evaluate(&p, &db).unwrap().stats.rounds,
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("direct", n), &input, |b, input| {
            let mut a = seqlog_sequence::Alphabet::new();
            let tm = samples::complement_tm(&mut a);
            let syms = a.seq_of_str(input);
            b.iter(|| tm.run(&syms, 1_000_000).unwrap().steps)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
