//! E5 (Thm 8): evaluation cost of a strongly safe order-2 Transducer
//! Datalog program as the database grows — polynomial minimal models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_bench::{dna_database, rng};
use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_transducer::library;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm8_model_size");
    group.sample_size(10);
    for count in [2usize, 4, 8] {
        let words = dna_database(&mut rng(), count, 8);
        group.bench_with_input(BenchmarkId::from_parameter(count), &words, |b, words| {
            b.iter_batched(
                || {
                    let mut e = Engine::new();
                    let syms: Vec<_> = "acgt"
                        .chars()
                        .map(|ch| e.alphabet.intern_char(ch))
                        .collect();
                    let sq = library::square(&mut e.alphabet, &syms);
                    e.register_transducer("square", sq);
                    let p = e
                        .parse_program(
                            "doubled(X ++ X) :- r(X).\nsquared(@square(X)) :- doubled(X).",
                        )
                        .unwrap();
                    let mut db = Database::new();
                    for w in words {
                        e.add_fact(&mut db, "r", &[w]);
                    }
                    (e, p, db)
                },
                |(mut e, p, db)| e.evaluate(&p, &db).unwrap().stats.domain_size,
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
