//! E4/E13 (Thm 3): non-constructive Sequence Datalog evaluation scales
//! polynomially with the database — the aⁿbⁿcⁿ pattern workload of
//! Example 1.3 over growing databases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_bench::{abc_database, rng, setup, ABCN_SRC};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm3_ptime_nonconstructive");
    group.sample_size(10);
    for (count, n) in [(2usize, 4usize), (4, 6), (8, 8)] {
        let words = abc_database(&mut rng(), count, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{count}seqs_n{n}")),
            &words,
            |b, words| {
                b.iter_batched(
                    || setup(ABCN_SRC, words),
                    |(mut e, p, db)| {
                        let m = e.evaluate(&p, &db).unwrap();
                        assert!(!m.tuples("answer").is_empty());
                        m.stats.facts
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
