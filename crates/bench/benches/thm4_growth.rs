//! E2/E3 (Thm 4): output growth of transducer networks — polynomial
//! (`n^(2^d)`) for order-2 chains, doubly exponential for the order-3 pump.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_sequence::Alphabet;
use seqlog_transducer::{library, run, ExecLimits, ExecStats, Network};

fn order2(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm4_order2_growth");
    group.sample_size(10);
    let mut a = Alphabet::new();
    let syms: Vec<_> = "x".chars().map(|ch| a.intern_char(ch)).collect();
    for d in 1..=3usize {
        let machines: Vec<_> = (0..d).map(|_| library::square(&mut a, &syms)).collect();
        let net = Network::chain(format!("sq^{d}"), machines);
        let n = 3usize;
        let input: Vec<_> = std::iter::repeat_n(syms[0], n).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}")),
            &input,
            |b, input| {
                b.iter(|| {
                    let out = net.run_simple(&[input]).unwrap();
                    assert_eq!(out.len(), n.pow(2u32.pow(d as u32)));
                    out.len()
                })
            },
        );
    }
    group.finish();
}

fn order3(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm4_order3_growth");
    group.sample_size(10);
    let mut a = Alphabet::new();
    let syms: Vec<_> = "x".chars().map(|ch| a.intern_char(ch)).collect();
    let t = library::exp(&mut a, &syms);
    for n in [3usize, 4, 5] {
        let input: Vec<_> = std::iter::repeat_n(syms[0], n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                let out = run(
                    &t,
                    &[input],
                    &ExecLimits::default(),
                    &mut ExecStats::default(),
                )
                .unwrap();
                assert_eq!(out.len() as u64, 2u64.pow(2u32.pow(n as u32 - 2)));
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, order2, order3);
criterion_main!(benches);
