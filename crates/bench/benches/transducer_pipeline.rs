//! Compile-time transducer fusion vs staged chain execution: the headline
//! claim of the fusion pass. A clause whose head nests three 1-state
//! letter mappers, `out(T, @m1(@m2(@m3(X)))) :- r(X), tick(T).`, is
//! evaluated with the pass enabled (the default — the chain is composed,
//! trimmed, determinized, and minimized into one machine at compile time)
//! and disabled (`EvalConfig::danger_disable_fusion`).
//!
//! The workload is shaped so per-derivation head construction dominates:
//! the `tick` join fans each word out into thousands of derivations, and
//! every one of them re-runs the head chain — three machine passes, three
//! tape copies, and three interned sequences per tuple on the chained
//! route versus one of each on the fused route. Word lengths stay modest
//! because the evaluator closes the extended active domain over every
//! base/derived word's windows (O(len²) per word, identical in both
//! modes); long words would measure domain closure, not the pipeline.
//!
//! Both routes are differentially pinned before timing (identical `out`
//! extents), and a one-shot wall-clock comparison asserts the ≥2×
//! separation the pass exists to deliver — the criterion numbers then
//! quantify it.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use seqlog_bench::{abc_database, rng};
use seqlog_core::{Database, Engine, EvalConfig, Program};
use seqlog_transducer::library;
use std::time::Instant;

const SRC: &str = "out(T, @m1(@m2(@m3(X)))) :- r(X), tick(T).";
const WORDS: usize = 8;
const TICKS: usize = 2_048;

/// The three chain stages: functional 1-state letter mappers over
/// `a`/`b`/`c` (rotate, collapse, swap — they do not commute).
fn register_mappers(e: &mut Engine) {
    let s: Vec<_> = "abc".chars().map(|c| e.alphabet.intern_char(c)).collect();
    let m1 = library::mapper(
        &mut e.alphabet,
        "m1",
        &[(s[0], s[1]), (s[1], s[2]), (s[2], s[0])],
    );
    let m2 = library::mapper(
        &mut e.alphabet,
        "m2",
        &[(s[0], s[0]), (s[1], s[0]), (s[2], s[1])],
    );
    let m3 = library::mapper(
        &mut e.alphabet,
        "m3",
        &[(s[0], s[2]), (s[1], s[1]), (s[2], s[0])],
    );
    e.register_transducer("m1", m1);
    e.register_transducer("m2", m2);
    e.register_transducer("m3", m3);
}

fn setup(words: &[String]) -> (Engine, Program, Database) {
    let mut e = Engine::new();
    register_mappers(&mut e);
    let program = e.parse_program(SRC).unwrap();
    let mut db = Database::new();
    for w in words {
        e.add_fact(&mut db, "r", &[w]);
    }
    for t in 0..TICKS {
        e.add_fact(&mut db, "tick", &[&format!("t{t}")]);
    }
    (e, program, db)
}

/// Budgets sized for the workload (tens of thousands of derived facts,
/// a ~100k-window extended domain).
fn fused_config() -> EvalConfig {
    EvalConfig {
        max_domain: 4_000_000,
        max_facts: 1_000_000,
        ..EvalConfig::default()
    }
}

fn chained_config() -> EvalConfig {
    EvalConfig {
        danger_disable_fusion: true,
        ..fused_config()
    }
}

fn run_route(words: &[String], cfg: &EvalConfig) -> (Vec<Vec<String>>, std::time::Duration) {
    let (mut e, p, db) = setup(words);
    let t = Instant::now();
    let model = e.evaluate_with(&p, &db, cfg).expect("pipeline settles");
    let elapsed = t.elapsed();
    let mut rows = e.rendered_tuples(&model, "out");
    rows.sort();
    (rows, elapsed)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("transducer_pipeline");
    group.sample_size(10);

    // Differential pin + separation assert. One warm-up pass per route
    // first, so the comparison isn't skewed by first-touch allocation.
    let pin_words = abc_database(&mut rng(), WORDS, 32);
    run_route(&pin_words, &fused_config());
    run_route(&pin_words, &chained_config());
    let (fused_rows, fused_elapsed) = run_route(&pin_words, &fused_config());
    let (chained_rows, chained_elapsed) = run_route(&pin_words, &chained_config());
    assert_eq!(fused_rows, chained_rows, "fused ≠ chained extent");
    assert!(
        chained_elapsed >= 2 * fused_elapsed,
        "fusion speedup below 2x: fused {fused_elapsed:?} vs chained {chained_elapsed:?}"
    );

    for len in [16usize, 32] {
        let words = abc_database(&mut rng(), WORDS, len);
        group.throughput(Throughput::Elements((WORDS * TICKS) as u64));
        group.bench_with_input(BenchmarkId::new("fused", len), &words, |b, words| {
            b.iter_batched(
                || setup(words),
                |(mut e, p, db)| {
                    e.evaluate_with(&p, &db, &fused_config())
                        .unwrap()
                        .stats
                        .facts
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("chained", len), &words, |b, words| {
            b.iter_batched(
                || setup(words),
                |(mut e, p, db)| {
                    e.evaluate_with(&p, &db, &chained_config())
                        .unwrap()
                        .stats
                        .facts
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
