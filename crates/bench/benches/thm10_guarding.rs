//! E11 (Thm 10): cost of evaluating a program against its guarded
//! transformation — same answers, bounded overhead from the `dom` closure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_bench::{random_word, rng};
use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_core::guard::guard_program;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm10_guarding");
    group.sample_size(10);
    for len in [8usize, 16, 32] {
        let seed = random_word(&mut rng(), "acgt", len);
        let probe: String = seed.chars().skip(1).collect();
        for guarded in [false, true] {
            let id = if guarded { "guarded" } else { "raw" };
            group.bench_with_input(
                BenchmarkId::new(id, len),
                &(seed.clone(), probe.clone()),
                |b, (seed, probe)| {
                    b.iter_batched(
                        || {
                            let mut e = Engine::new();
                            let p = e.parse_program("p(X) :- q(X[2:end]).").unwrap();
                            let p = if guarded {
                                guard_program(&p, &[("seed".into(), 1)])
                            } else {
                                p
                            };
                            let mut db = Database::new();
                            e.add_fact(&mut db, "seed", &[seed]);
                            e.add_fact(&mut db, "q", &[probe]);
                            (e, p, db)
                        },
                        |(mut e, p, db)| e.evaluate(&p, &db).unwrap().stats.facts,
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
