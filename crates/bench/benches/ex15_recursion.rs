//! E6 (Ex 1.5 / Thm 2): structural recursion (`rep1`, terminating) vs
//! constructive recursion (`rep2`, diverging until a budget stops it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_bench::{setup, REP1_SRC, REP2_SRC};
use seqlog_core::eval::{EvalConfig, EvalError};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ex15_structural_vs_constructive");
    group.sample_size(10);
    for reps in [2usize, 3, 4] {
        let word = "ab".repeat(reps);
        group.bench_with_input(BenchmarkId::new("rep1_structural", reps), &word, |b, w| {
            b.iter_batched(
                || {
                    let (mut e, p, mut db) = setup(REP1_SRC, std::slice::from_ref(w));
                    e.add_fact(&mut db, "seq", &[w]);
                    (e, p, db)
                },
                |(mut e, p, db)| e.evaluate(&p, &db).unwrap().stats.facts,
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(
            BenchmarkId::new("rep2_constructive_until_budget", reps),
            &word,
            |b, w| {
                b.iter_batched(
                    || {
                        let (mut e, p, mut db) = setup(REP2_SRC, std::slice::from_ref(w));
                        e.add_fact(&mut db, "seq", &[w]);
                        (e, p, db)
                    },
                    |(mut e, p, db)| match e.evaluate_with(&p, &db, &EvalConfig::probe()) {
                        Err(EvalError::Budget { stats, .. }) => stats.facts,
                        other => panic!("rep2 must diverge, got {other:?}"),
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
