//! E1 (Fig. 2): `T_square` execution cost vs input length — the quadratic
//! output of Example 6.1's order-2 machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_sequence::Alphabet;
use seqlog_transducer::{library, run, ExecLimits, ExecStats};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_square");
    group.sample_size(20);
    let mut a = Alphabet::new();
    let syms: Vec<_> = "abc".chars().map(|ch| a.intern_char(ch)).collect();
    let t = library::square(&mut a, &syms);
    for n in [8usize, 16, 32, 64] {
        let input: Vec<_> = (0..n).map(|i| syms[i % 3]).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                let out = run(
                    &t,
                    &[input],
                    &ExecLimits::default(),
                    &mut ExecStats::default(),
                )
                .unwrap();
                assert_eq!(out.len(), n * n);
                out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
