//! E10 (Ex 7.1): DNA→RNA→protein throughput — the serial order-1 network
//! is linear in sequence length; the Transducer Datalog route adds
//! domain-closure cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use seqlog_bench::{dna_database, rng};
use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_transducer::{library, Network};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ex71_genome_pipeline");
    group.sample_size(10);
    for len in [100usize, 1_000, 10_000] {
        let words = dna_database(&mut rng(), 1, len);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::new("network", len), &words[0], |b, w| {
            let mut a = seqlog_sequence::Alphabet::new();
            let net = Network::chain(
                "pipe",
                vec![library::transcribe(&mut a), library::translate(&mut a)],
            );
            let syms = a.seq_of_str(w);
            b.iter(|| net.run_simple(&[&syms]).unwrap().len())
        });
        if len <= 100 {
            group.bench_with_input(
                BenchmarkId::new("transducer_datalog", len),
                &words[0],
                |b, w| {
                    b.iter_batched(
                        || {
                            let mut e = Engine::new();
                            let t1 = library::transcribe(&mut e.alphabet);
                            let t2 = library::translate(&mut e.alphabet);
                            e.register_transducer("transcribe", t1);
                            e.register_transducer("translate", t2);
                            let p = e
                                .parse_program(
                                    "rnaseq(D, @transcribe(D)) :- dnaseq(D).\n\
                                 proteinseq(D, @translate(R)) :- rnaseq(D, R).",
                                )
                                .unwrap();
                            let mut db = Database::new();
                            e.add_fact(&mut db, "dnaseq", &[w]);
                            (e, p, db)
                        },
                        |(mut e, p, db)| e.evaluate(&p, &db).unwrap().stats.facts,
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
