//! Demand-driven point query vs full fixpoint evaluation: the headline
//! claim of the magic-set transformation. A recursive ancestor closure
//! over ~100k edge facts (20k disjoint chains) answers a single
//! bound-first-argument query; the demand route evaluates only the one
//! chain the binding reaches, the full route materializes every chain's
//! closure (~300k derived facts) and filters afterwards.
//!
//! Both routes are differentially pinned before timing (same answers for
//! the probe), and a one-shot wall-clock comparison asserts the ≥10×
//! separation the transformation exists to deliver — the criterion
//! numbers then quantify it.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use seqlog_core::analysis::Bind;
use seqlog_core::{Database, Engine, EvalConfig};
use std::time::Instant;

const ANC_SRC: &str = "anc(X, Y) :- edge(X, Y).\nanc(X, Z) :- anc(X, Y), edge(Y, Z).";

/// Chains and edges-per-chain: 20_000 × 5 = 100_000 edge facts; the full
/// closure adds 15 anc tuples per chain (~300k derived facts).
const CHAINS: usize = 20_000;
const CHAIN_LEN: usize = 5;

fn node(chain: usize, pos: usize) -> String {
    format!("c{chain}n{pos}")
}

fn edge_facts() -> Vec<(String, String)> {
    let mut edges = Vec::with_capacity(CHAINS * CHAIN_LEN);
    for c in 0..CHAINS {
        for p in 0..CHAIN_LEN {
            edges.push((node(c, p), node(c, p + 1)));
        }
    }
    edges
}

fn demand_session(edges: &[(String, String)]) -> seqlog_core::EngineSession {
    let mut e = Engine::new();
    let program = e.parse_program(ANC_SRC).unwrap();
    let mut s = e.into_session(&program, EvalConfig::default()).unwrap();
    for (x, y) in edges {
        s.assert_fact("edge", &[x, y]).unwrap();
    }
    s
}

fn full_setup(edges: &[(String, String)]) -> (Engine, seqlog_core::Program, Database) {
    let mut e = Engine::new();
    let program = e.parse_program(ANC_SRC).unwrap();
    let mut db = Database::new();
    for (x, y) in edges {
        e.add_fact(&mut db, "edge", &[x, y]);
    }
    (e, program, db)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_query");
    group.sample_size(10);

    let edges = edge_facts();
    let probe = node(0, 0);
    let pattern = [Bind::Bound(probe.as_str()), Bind::Free];

    // Differential pin: the demand route must return exactly the filter
    // of the full model's extent for the probe.
    let mut session = demand_session(&edges);
    let t_demand = Instant::now();
    let demand_answers = session.query_bound("anc", &pattern).unwrap();
    let demand_elapsed = t_demand.elapsed();
    let (full_facts, full_answers, full_elapsed) = {
        let (mut e, p, db) = full_setup(&edges);
        let t_full = Instant::now();
        let model = e.evaluate(&p, &db).expect("full workload settles");
        let elapsed = t_full.elapsed();
        let mut answers: Vec<Vec<String>> = e
            .rendered_tuples(&model, "anc")
            .into_iter()
            .filter(|t| t[0] == probe)
            .collect();
        answers.sort();
        answers.dedup();
        (model.stats.facts, answers, elapsed)
    };
    assert_eq!(demand_answers, full_answers, "demand ≠ filtered batch");
    assert_eq!(
        demand_answers.len(),
        CHAIN_LEN,
        "probe reaches its whole chain"
    );
    assert!(
        full_facts >= 4 * CHAINS * CHAIN_LEN,
        "full closure too small for the claim: {full_facts} facts"
    );
    // The separation the transformation exists for: well over 10× here
    // (one chain's cone vs ~300k derived facts).
    assert!(
        full_elapsed >= 10 * demand_elapsed,
        "demand route not ≥10x faster: demand {demand_elapsed:?} vs full {full_elapsed:?}"
    );

    group.bench_with_input(
        BenchmarkId::from_parameter(format!("demand_1_of_{CHAINS}_chains")),
        &(),
        |b, ()| {
            // One reused session: query_bound never mutates logical
            // session state, and the cached magic program is the
            // steady-state the API is designed around.
            b.iter(|| {
                let answers = session.query_bound("anc", &pattern).unwrap();
                assert_eq!(answers.len(), CHAIN_LEN);
                answers.len()
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter(format!("full_closure_{full_facts}facts")),
        &edges,
        |b, edges| {
            b.iter_batched(
                || full_setup(edges),
                |(mut e, p, db)| {
                    let m = e.evaluate(&p, &db).unwrap();
                    assert_eq!(m.stats.facts, full_facts);
                    m.stats.facts
                },
                BatchSize::LargeInput,
            )
        },
    );

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
