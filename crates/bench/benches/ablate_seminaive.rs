//! E12 (ablation): naive T-operator iteration vs semi-naive evaluation on
//! the paper's recursive workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_bench::{abc_database, rng, setup, ABCN_SRC, REVERSE_SRC};
use seqlog_core::eval::{EvalConfig, Strategy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_seminaive");
    group.sample_size(10);
    let workloads: Vec<(&str, &str, Vec<String>)> = vec![
        ("abcn", ABCN_SRC, abc_database(&mut rng(), 4, 6)),
        ("reverse", REVERSE_SRC, vec!["0110100110".into()]),
    ];
    for (name, src, words) in workloads {
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            let id = match strategy {
                Strategy::Naive => "naive",
                Strategy::SemiNaive => "seminaive",
            };
            group.bench_with_input(BenchmarkId::new(name, id), &words, |b, words| {
                b.iter_batched(
                    || setup(src, words),
                    |(mut e, p, db)| {
                        e.evaluate_with(
                            &p,
                            &db,
                            &EvalConfig {
                                strategy,
                                ..Default::default()
                            },
                        )
                        .unwrap()
                        .stats
                        .facts
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
