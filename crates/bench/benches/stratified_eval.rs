//! SCC-stratified scheduling vs the global semi-naive loop on the
//! workload the scheduler exists for: a deep constructive chain (every
//! stratum grows the extended active domain) alongside a ground
//! domain-sensitive clause (`gd(X, X) :- true.`).
//!
//! The global loop re-arms the domain-sensitive clause in *every* round
//! the domain grew — and a K-stratum constructive chain grows the domain
//! for K consecutive rounds, so `gd` re-enumerates the whole domain K
//! times. The stratified scheduler settles the chain in one topological
//! pass and re-arms `gd` once per outer pass (two passes total), so the
//! enumeration cost is paid O(1) times instead of O(K).
//!
//! Both routes are differentially pinned before timing: identical fact
//! counts and domain sizes on every workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqlog_bench::{distinct_suffix_words, setup_rel};
use seqlog_core::{EvalConfig, Scheduling};

/// Chain depth — one stratum per predicate `s1..s{DEPTH}`.
const DEPTH: usize = 24;

/// The benchmark program: `gd` enumerates the domain, the chain grows it
/// for `DEPTH` rounds.
fn chain_program(depth: usize) -> String {
    let mut src = String::from("gd(X, X) :- true.\n");
    for i in 1..=depth {
        let prev = i - 1;
        src.push_str(&format!("s{i}(X ++ \"x\") :- s{prev}(X).\n"));
    }
    src
}

fn config(scheduling: Scheduling) -> EvalConfig {
    EvalConfig {
        scheduling,
        threads: 1,
        ..EvalConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("stratified_eval");
    group.sample_size(10);

    let words = distinct_suffix_words(16, 5);
    let src = chain_program(DEPTH);

    // Differential pin: both schedulers compute the same model.
    let pinned = {
        let (mut e, p, db) = setup_rel(&src, "s0", &words);
        let m = e
            .evaluate_with(&p, &db, &config(Scheduling::Stratified))
            .unwrap();
        let (mut e2, p2, db2) = setup_rel(&src, "s0", &words);
        let m2 = e2
            .evaluate_with(&p2, &db2, &config(Scheduling::Global))
            .unwrap();
        assert_eq!(m.stats.facts, m2.stats.facts, "stratified ≠ global");
        assert_eq!(m.stats.domain_size, m2.stats.domain_size);
        m.stats.facts
    };

    for (label, scheduling) in [
        ("stratified", Scheduling::Stratified),
        ("global", Scheduling::Global),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, format!("depth{DEPTH}_{pinned}facts")),
            &scheduling,
            |b, &scheduling| {
                b.iter_batched(
                    || setup_rel(&src, "s0", &words),
                    |(mut e, p, db)| {
                        let m = e.evaluate_with(&p, &db, &config(scheduling)).unwrap();
                        assert_eq!(m.stats.facts, pinned);
                        m.stats.facts
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
