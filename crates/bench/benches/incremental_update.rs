//! Incremental update vs batch re-evaluation (the session value
//! proposition): a small delta asserted into a settled ≥5k-fact base
//! against re-running the whole fixpoint over the same final database.
//!
//! Both routes are differentially pinned before timing: the resumed
//! session's fact count must equal the from-scratch model's. The session
//! clone used to reset state between iterations happens in
//! `iter_batched`'s setup and is excluded from the measurement.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use seqlog_bench::{distinct_suffix_words, settle_session, setup_rel, CHAIN_SRC};
use seqlog_core::EvalConfig;

/// The delta word: short, with a tail symbol no base word uses, so it adds
/// a genuinely new (but small) trimming chain.
const DELTA_WORD: &str = "abcZ";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_update");
    group.sample_size(10);

    let base_words = distinct_suffix_words(8, 33);
    let mut all_words = base_words.clone();
    all_words.push(DELTA_WORD.to_string());

    // Settle the base once; every timed iteration works on a clone.
    let settled = settle_session(CHAIN_SRC, "chain0", &base_words, EvalConfig::default());
    let base_facts = settled.stats().facts;
    assert!(
        base_facts >= 5_000,
        "settled base too small for the claim: {base_facts} facts"
    );

    // Differential pin: resumed == from-scratch on the final database.
    let full_facts = {
        let (mut e, p, db) = setup_rel(CHAIN_SRC, "chain0", &all_words);
        e.evaluate(&p, &db)
            .expect("full workload settles")
            .stats
            .facts
    };
    {
        let mut s = settled.clone();
        s.assert_fact("chain0", &[DELTA_WORD]).unwrap();
        let stats = s.run().unwrap();
        assert_eq!(stats.facts, full_facts, "incremental ≠ batch");
    }

    group.bench_with_input(
        BenchmarkId::from_parameter(format!("delta1_on_{base_facts}facts")),
        &settled,
        |b, settled| {
            b.iter_batched(
                || settled.clone(),
                |mut s| {
                    s.assert_fact("chain0", &[DELTA_WORD]).unwrap();
                    let stats = s.run().unwrap();
                    assert_eq!(stats.facts, full_facts);
                    stats.facts
                },
                BatchSize::LargeInput,
            )
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter(format!("batch_reeval_{full_facts}facts")),
        &all_words,
        |b, words| {
            b.iter_batched(
                || setup_rel(CHAIN_SRC, "chain0", words),
                |(mut e, p, db)| {
                    let m = e.evaluate(&p, &db).unwrap();
                    assert_eq!(m.stats.facts, full_facts);
                    m.stats.facts
                },
                BatchSize::LargeInput,
            )
        },
    );

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
