#!/usr/bin/env bash
# Short benchmark smoke run: measures the headline benchmarks with a 1s
# budget per benchmark and aggregates per-benchmark medians into
# BENCH_<N>.json at the repo root, so successive PRs can track the perf
# trajectory. Includes the parallel_scaling bench (the same workloads swept
# over EvalConfig::threads ∈ {1,2,4,8}, including the delta1M case: a
# settled session resumed with a ~1.1M-fact semi-naive delta committed
# through the sharded commit), the incremental_update bench
# (small session delta on a ≥5k-fact settled base vs batch re-evaluation),
# and the retract_update bench (one-fact retraction on a ≥8k-fact settled
# base, maintained by Delete-and-Rederive, vs batch re-evaluation of the
# surviving database), and the durability bench (wal_overhead: the same
# assert burst unlogged vs WAL-logged vs fsync-per-record; recovery_time:
# open_durable replaying a 513-record log tail vs loading a checkpointed
# snapshot), and the stratified_eval bench (SCC-stratified scheduling vs
# the global semi-naive loop on a 24-stratum constructive chain plus a
# ground domain-sensitive clause — the workload where the global loop
# re-enumerates the domain once per round), and the point_query bench
# (demand-driven bound-argument query via the magic-set transformation —
# one chain's cone out of a ~100k-edge recursive closure — vs full
# fixpoint evaluation plus filtering, with a ≥10x separation asserted
# before timing), and the transducer_pipeline bench (a 3-machine head
# chain fused at compile time into one minimized machine vs staged
# per-derivation execution, with a ≥2x separation asserted before
# timing).
# Usage: scripts/bench_check.sh [N]  (default N=9).
set -euo pipefail

cd "$(dirname "$0")/.."
N="${1:-9}"
OUT="BENCH_${N}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# The criterion shim appends one JSON object per benchmark to $BENCH_JSON.
BENCH_JSON="$RAW" cargo bench -q -p seqlog-bench \
    --bench ex15_recursion --bench thm3_ptime --bench fig2_square \
    --bench parallel_scaling --bench incremental_update \
    --bench retract_update --bench durability \
    --bench stratified_eval --bench point_query \
    --bench transducer_pipeline \
    -- --measurement-time 1

{
    echo '{'
    echo '  "schema": 1,'
    echo "  \"run\": ${N},"
    echo '  "measurement_time_secs": 1,'
    echo '  "results": ['
    sed 's/^/    /; $!s/$/,/' "$RAW"
    echo '  ]'
    echo '}'
} > "$OUT"

echo "wrote $OUT ($(grep -c '"id"' "$OUT") benchmarks)"
