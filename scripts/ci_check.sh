#!/usr/bin/env bash
# The full pre-merge check: formatting, tier-1 (release build + every test
# suite), the differential fuzz suites — including the retraction oracle
# (assert/retract interleavings vs fresh batch evaluation of the surviving
# base facts) — and a zero-warning clippy pass over every target. The fuzz
# generators are seeded from test names (see crates/shims/proptest), so a
# failure here reproduces locally by running the same test — no seed to
# copy around.
# Usage: scripts/ci_check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (includes tests/fuzz_differential.rs with its pinned seeds:"
echo "    batch/incremental properties AND the retraction oracle — retract ≡ fresh"
echo "    batch evaluation of the surviving base facts, 600 generated cases)"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "ci_check: all green"
