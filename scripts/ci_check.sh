#!/usr/bin/env bash
# The full pre-merge check: formatting, tier-1 (release build + every test
# suite), the differential fuzz suites — including the retraction oracle
# (assert/retract interleavings vs fresh batch evaluation of the surviving
# base facts) and the crash-injection recovery suite (durable sessions
# killed at fuzzed WAL offsets, recovered, and compared bit-for-bit
# against a fresh replay), the explicit sharded-commit threads matrix
# (every generated case forced through the sharded dedupe + task-order
# merge at threads 1/2/4/8 plus the commit-phase mutation tests), the
# demand-driven query oracle (query_bound ≡ filter of the batch fixpoint
# across every adornment of arity ≤ 3, with the transformation's own
# mutants — dropped magic guard, bypassed fallback — being caught), the
# transducer-algebra property suite (trim/determinize/compose/minimize
# vs the extensional oracle on random machines, with the skip-trim and
# swapped-composition mutants being caught) and the fusion differential
# (fusion on ≡ off bit-for-bit at threads 1/2/4/8) — the
# SL001..SL009 lint analyzer over the
# program corpus with machine-level lints, and a zero-warning clippy
# pass over every
# target. The fuzz
# generators are seeded from test names (see crates/shims/proptest), so a
# failure here reproduces locally by running the same test — no seed to
# copy around.
# Usage: scripts/ci_check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (includes tests/fuzz_differential.rs with its pinned seeds:"
echo "    batch/incremental properties AND the retraction oracle — retract ≡ fresh"
echo "    batch evaluation of the surviving base facts, 600 generated cases)"
cargo test -q

echo "==> cargo test -q --test fuzz_recovery (crash-injection recovery suite:"
echo "    durable sessions killed at fuzzed WAL byte offsets and record"
echo "    boundaries, recovered across threads 1/2/4/8, and compared"
echo "    bit-for-bit against a fresh replay of the surviving log; plus"
echo "    bit-flip corruption sweeps and the harness's own mutants —"
echo "    skip-truncation, skip-checksum, stale-watermarks — being caught)"
cargo test -q --test fuzz_recovery

echo "==> sharded-commit threads matrix (explicit): every generated case"
echo "    forced through the parallel sharded commit at threads 1/2/4/8 and"
echo "    compared bit-for-bit against the sequential reference — assert-only"
echo "    batches, retraction interleavings, and crash-recovery replays —"
echo "    plus the commit-phase mutation tests (reversed shard-merge order,"
echo "    skipped epoch freeze) being caught"
cargo test -q --test fuzz_differential -- sharded_commit mutant_
cargo test -q --test fuzz_recovery sharded_commit

echo "==> cargo test -q --test fuzz_demand (demand-driven query oracle:"
echo "    query_bound ≡ sorted filter of the batch fixpoint for every"
echo "    populated predicate and every bound/free adornment of arity ≤ 3,"
echo "    on settled and unsettled sessions, bit-for-bit across threads"
echo "    1/2/4/8; plus the transformation mutants — dropped magic guard,"
echo "    bypassed domain-sensitive fallback — being caught)"
cargo test -q --test fuzz_demand

echo "==> cargo test -q -p seqlog-transducer --test algebra (transducer-algebra"
echo "    property suite: trim/determinize/compose/minimize preserve the"
echo "    machine's relation against the brute-force extensional oracle on"
echo "    random machines; equivalence agrees with extensional comparison;"
echo "    plus the harness's own mutants — skip-trim, swapped composition"
echo "    order — being caught)"
cargo test -q -p seqlog-transducer --test algebra

echo "==> cargo test -q --test fuzz_fusion (fusion differential: every"
echo "    generated case extended with transducer-chain clauses, plus the"
echo "    paper's transducer programs, evaluated with the compile-time"
echo "    fusion pass on and off — extents bit-for-bit identical at threads"
echo "    1/2/4/8, and the fused route provably doing less transducer work)"
cargo test -q --test fuzz_fusion

echo "==> lint analyzer over the program corpus (examples/programs/*.sdl):"
echo "    SL001..SL009 diagnostics must match each file's % expect: directive"
echo "    exactly — clean programs fail on any new warning, lint fixtures"
echo "    fail if their diagnostic stops reproducing (--machines prints the"
echo "    registered machines' algebra report: size, functionality, minimized"
echo "    size)"
cargo run --release -q --example analyze -- --check --machines examples/programs/*.sdl

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "ci_check: all green"
