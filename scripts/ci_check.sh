#!/usr/bin/env bash
# The full pre-merge check: tier-1 (release build + every test suite,
# which includes the pinned-seed differential fuzz suite in
# tests/fuzz_differential.rs) plus a zero-warning clippy pass over every
# target. The fuzz generator is seeded from test names (see
# crates/shims/proptest), so a failure here reproduces locally by running
# the same test — no seed to copy around.
# Usage: scripts/ci_check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (includes tests/fuzz_differential.rs with its pinned seed)"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "ci_check: all green"
