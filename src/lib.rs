//! # sequence-datalog
//!
//! A complete Rust reproduction of Bonner & Mecca, *Sequences, Datalog, and
//! Transducers* (PODS 1995 / JCSS 57, 1998): the Sequence Datalog query
//! language, generalized sequence transducers, Transducer Datalog, the
//! strongly safe fragment, and the Turing-machine constructions used in the
//! paper's expressibility proofs.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sequence`] — symbols, interned sequences, extended active domains,
//! * [`core`] — the Sequence/Transducer Datalog language and engine,
//! * [`transducer`] — generalized transducers and acyclic networks,
//! * [`turing`] — Turing machines and the Theorem 1 / Theorem 5 compilers.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduced results.

pub use seqlog_core as core;
pub use seqlog_sequence as sequence;
pub use seqlog_transducer as transducer;
pub use seqlog_turing as turing;

pub use seqlog_core::prelude;
